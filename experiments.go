package bulkpim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"bulkpim/internal/core"
	"bulkpim/internal/report"
	"bulkpim/internal/runner"
	"bulkpim/internal/workload/tpch"
	"bulkpim/internal/workload/ycsb"
)

// Scale selects how much of the paper's measurement volume the harness
// reproduces. Distributions, scope counts and model behaviour are identical
// at every scale; only operation counts and sweep densities shrink.
type Scale string

const (
	// ScaleSmoke is the smallest scale: one record count, a handful of
	// operations — a CI smoke signal that every experiment still runs
	// end to end (seconds for the whole suite).
	ScaleSmoke Scale = "smoke"
	// ScaleBench is the minimal scale used by `go test -bench` (seconds
	// per figure).
	ScaleBench Scale = "bench"
	// ScaleQuick regenerates every figure's shape in minutes.
	ScaleQuick Scale = "quick"
	// ScaleMedium densifies the sweeps (tens of minutes).
	ScaleMedium Scale = "medium"
	// ScaleFull is the paper's measurement volume (1000 YCSB ops, 10 runs
	// per TPC-H query, full sweep densities). Expect hours sequentially;
	// use Parallelism to bound it by the slowest single point.
	ScaleFull Scale = "full"
)

// Scales lists the valid measurement scales, smallest first.
func Scales() []Scale {
	return []Scale{ScaleSmoke, ScaleBench, ScaleQuick, ScaleMedium, ScaleFull}
}

// ValidScale reports whether s names a known scale.
func ValidScale(s Scale) bool {
	for _, v := range Scales() {
		if s == v {
			return true
		}
	}
	return false
}

// Options configures the experiment harness.
type Options struct {
	Scale Scale
	// Log receives progress lines; nil discards them. RunAll serializes
	// calls across its concurrent experiments, so Log need not be
	// goroutine-safe.
	Log func(format string, args ...interface{})
	// Seed lets repeated harness runs vary; 0 uses the default.
	Seed uint64
	// Parallelism caps concurrent simulation jobs; 0 uses GOMAXPROCS, 1
	// forces sequential execution. Every sweep's grid points are
	// independent simulations, so results — figures, tables, CSVs — are
	// byte-identical at every value.
	Parallelism int
	// Cache, when non-nil, memoizes finished grid points across harness
	// invocations: every simulation job is looked up by (key, config +
	// workload fingerprint) before executing and written back after.
	// The simulations are deterministic and results round-trip exactly
	// through the store, so cached and computed runs emit byte-identical
	// reports; an interrupted run resumes by skipping finished points.
	Cache *ResultCache
	// pool and flight, when non-nil, schedule every sweep of this
	// options value on one shared worker pool and deduplicate identical
	// in-flight grid points across experiments (set by RunAll for
	// suite-wide scheduling).
	pool   *runner.Pool
	flight *runner.Flight[Result]
}

func (o Options) log(format string, args ...interface{}) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// runnerOpts forwards live per-job progress to the harness log and
// wires the result cache's lookup/write-back hooks. Under parallelism
// the completion order (and therefore the log order) varies; results
// do not.
func (o Options) runnerOpts() runner.Options[Result] {
	ro := runner.Options[Result]{
		Parallelism: o.Parallelism,
		Pool:        o.pool,
		Flight:      o.flight,
		OnResult: func(done, total int, r runner.JobResult[Result]) {
			if r.Err != nil {
				o.log("[%d/%d] %s FAILED: %v", done, total, r.Key, r.Err)
				return
			}
			cached := ""
			if r.Cached {
				cached = " (cached)"
			}
			o.log("[%d/%d] %s cycles=%d wall=%s%s", done, total, r.Key,
				r.Value.Cycles, r.Wall.Round(time.Millisecond), cached)
		},
	}
	if c := o.Cache; c != nil {
		ro.Lookup = c.Lookup
		ro.Store = func(key, fingerprint string, v Result) {
			// A failed write-back only costs a future recompute; it is
			// counted in the cache stats and logged, never fatal.
			if err := c.Store(key, fingerprint, v); err != nil {
				o.log("cache store %s: %v", key, err)
			}
		}
	}
	return ro
}

// collectErrs folds per-job failures into one error, each reported
// against its job key. A nil return means every point succeeded.
func collectErrs(rs []runner.JobResult[Result]) error {
	var errs []error
	for _, r := range rs {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Key, r.Err))
		}
	}
	return errors.Join(errs...)
}

// ycsbRecordCounts returns the record-count sweep (x axis of Figs. 3/7/10..12).
func (o Options) ycsbRecordCounts() []int {
	switch o.Scale {
	case ScaleFull:
		return []int{100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
			8_000_000, 16_000_000, 24_000_000, 32_000_000}
	case ScaleMedium:
		return []int{100_000, 500_000, 2_000_000, 8_000_000, 16_000_000, 32_000_000}
	case ScaleBench:
		return []int{100_000, 2_000_000}
	case ScaleSmoke:
		return []int{100_000}
	default:
		return []int{100_000, 500_000, 2_000_000, 8_000_000}
	}
}

func (o Options) ycsbOps() int {
	switch o.Scale {
	case ScaleFull:
		return 1000
	case ScaleMedium:
		return 60
	case ScaleBench:
		return 8
	case ScaleSmoke:
		return 4
	default:
		return 16
	}
}

func (o Options) tpchScale() float64 {
	switch o.Scale {
	case ScaleFull:
		return 1.0
	case ScaleMedium:
		return 0.1
	case ScaleBench, ScaleSmoke:
		return 0.01
	default:
		return 0.02
	}
}

// variantNames maps models to series names.
func variantNames(models []Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	return out
}

// RunRecord is one simulated run's outcome inside a sweep.
type RunRecord struct {
	Model   Model
	Records int
	Scopes  int
	Result  Result
}

// YCSBSweep runs the given models across the option's record counts, with
// modify applied to each system config (nil for the base Table II system).
// Points run on the job runner at opts.Parallelism. Job keys use the
// "ycsb" prefix; sweeps with a non-base config should go through
// YCSBSweepNamed so differently-configured points get distinct keys.
func YCSBSweep(opts Options, models []Model, modify func(*Config)) ([]RunRecord, error) {
	return ycsbSweep(opts, "ycsb", models, nil, modify)
}

// YCSBSweepNamed is YCSBSweep with an explicit job-key prefix,
// distinguishing differently-configured grids (Fig. 11 ablations, the
// 8MB-LLC sweep) in progress logs, error reports and any future result
// cache.
func YCSBSweepNamed(opts Options, prefix string, models []Model, modify func(*Config)) ([]RunRecord, error) {
	return ycsbSweep(opts, prefix, models, nil, modify)
}

// ycsbSweep is the shared sweep core: one workload is generated per
// record count — hoisted out of the model loop and shared read-only by
// every variant, so all models measure the identical operation sequence
// without regenerating it per point — then one job per (records, model)
// grid point is enqueued.
func ycsbSweep(opts Options, prefix string, models []Model,
	modifyParams func(*ycsb.Params), modify func(*Config)) ([]RunRecord, error) {
	type point struct {
		w       *ycsb.Workload
		records int
		model   Model
	}
	var points []point
	var specs []runner.SimJob
	for _, records := range opts.ycsbRecordCounts() {
		p := ycsb.DefaultParams(records)
		p.Operations = opts.ycsbOps()
		p.Seed = opts.seed()
		if modifyParams != nil {
			modifyParams(&p)
		}
		w := ycsb.New(p)
		w.Precompute() // freeze the workload before sharing it across jobs
		extra := ycsbIdentity(p)
		for _, m := range models {
			pt := point{w: w, records: records, model: m}
			points = append(points, pt)
			specs = append(specs, runner.SimJob{
				Key:  fmt.Sprintf("%s/records=%d/model=%s", prefix, records, m),
				Base: DefaultConfig(),
				Mutate: func(cfg *Config) {
					cfg.Model = pt.model
					if modify != nil {
						modify(cfg)
					}
				},
				Execute: func(cfg Config) (Result, error) { return ycsb.Run(pt.w, cfg) },
				Extra:   extra,
			})
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	opts.log("%s sweep: %s", prefix, runner.Summarize(results))
	var out []RunRecord
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		pt := points[i]
		out = append(out, RunRecord{Model: pt.model, Records: pt.records, Scopes: pt.w.Scopes, Result: r.Value})
	}
	return out, collectErrs(results)
}

// ycsbIdentity renders the full workload parameter set as a SimJob
// Extra string, so runs at different scales, seeds or thread counts
// never alias in the result cache even when their Configs agree.
func ycsbIdentity(p ycsb.Params) string { return fmt.Sprintf("ycsb:%+v", p) }

// tpchIdentity is the TPC-H equivalent: query name plus everything
// NewWorkload derives the instruction streams from.
func tpchIdentity(q tpch.QuerySpec, threads int, scale float64, verify bool) string {
	return fmt.Sprintf("tpch:%s:threads=%d:scale=%g:verify=%v", q.Name, threads, scale, verify)
}

// fig3Variants / fig7Variants are the paper's series.
var (
	fig3Variants = []Model{Naive, Uncacheable, SWFlush}
	fig7Variants = []Model{Naive, SWFlush, Atomic, Store, Scope, ScopeRelaxed}
)

// normalizeToNaive converts a sweep into per-point ratios against Naive.
// It fails explicitly when a record count has no Naive baseline — the
// model list omitted Naive, or its point errored — instead of emitting
// +Inf ratios.
func normalizeToNaive(recs []RunRecord) (map[int]map[string]float64, error) {
	base := map[int]float64{}
	for _, r := range recs {
		if r.Model == Naive {
			base[r.Records] = float64(r.Result.Cycles)
		}
	}
	out := map[int]map[string]float64{}
	for _, r := range recs {
		b := base[r.Records]
		if b == 0 {
			return nil, fmt.Errorf("normalize: no Naive baseline for records=%d (sweep must include a successful Naive point)", r.Records)
		}
		if out[r.Records] == nil {
			out[r.Records] = map[string]float64{}
		}
		out[r.Records][r.Model.String()] = float64(r.Result.Cycles) / b
	}
	return out, nil
}

func scopesOf(recs []RunRecord, records int) int {
	for _, r := range recs {
		if r.Records == records {
			return r.Scopes
		}
	}
	return 0
}

// Fig3 reproduces Fig. 3: Naive vs Uncacheable vs SW-Flush run time
// (normalized to Naive) over the record-count sweep.
func Fig3(opts Options) (*Series, error) {
	recs, err := YCSBSweep(opts, fig3Variants, nil)
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Fig3", "records", "run time / naive", variantNames(fig3Variants))
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		s.AddPoint(float64(records), norm[records])
	}
	return s, nil
}

// YCSBFigures bundles the series Figs. 7 and 10 share.
type YCSBFigures struct {
	Abs          *Series // Fig. 7a: absolute run time (seconds)
	Norm         *Series // Fig. 7b: run time normalized to Naive
	BufLen       *Series // Fig. 10a: mean PIM buffer length on arrival
	UniqueScopes *Series // Fig. 10b: mean unique scopes in PIM buffer
	ScanLatency  *Series // Fig. 10c: mean LLC scan latency (cycles)
	SkipRatio    *Series // Fig. 10d: SBV mean skipped-set ratio
}

// buildYCSBFigures derives all YCSB series from one sweep, X = scope count.
func buildYCSBFigures(opts Options, prefix string, recs []RunRecord) (*YCSBFigures, error) {
	names := variantNames(fig7Variants)
	f := &YCSBFigures{
		Abs:          report.NewSeries(prefix+"a", "scopes", "run time [s]", names),
		Norm:         report.NewSeries(prefix+"b", "scopes", "run time / naive", names),
		BufLen:       report.NewSeries(prefix+"-10a", "scopes", "mean PIM buffer len", names),
		UniqueScopes: report.NewSeries(prefix+"-10b", "scopes", "mean unique scopes", names),
		ScanLatency:  report.NewSeries(prefix+"-10c", "scopes", "mean LLC scan latency", names),
		SkipRatio:    report.NewSeries(prefix+"-10d", "scopes", "SBV skip ratio", names),
	}
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		x := float64(scopesOf(recs, records))
		abs := map[string]float64{}
		buf := map[string]float64{}
		uniq := map[string]float64{}
		scan := map[string]float64{}
		skip := map[string]float64{}
		for _, r := range recs {
			if r.Records != records {
				continue
			}
			name := r.Model.String()
			abs[name] = r.Result.Seconds
			buf[name] = r.Result.Stats["pim.buffer_len_mean"]
			uniq[name] = r.Result.Stats["pim.unique_scopes_mean"]
			scan[name] = r.Result.Stats["llc.scan_latency_mean"]
			skip[name] = r.Result.Stats["llc.sbv_skip_ratio"]
		}
		f.Abs.AddPoint(x, abs)
		f.Norm.AddPoint(x, norm[records])
		f.BufLen.AddPoint(x, buf)
		f.UniqueScopes.AddPoint(x, uniq)
		f.ScanLatency.AddPoint(x, scan)
		f.SkipRatio.AddPoint(x, skip)
	}
	return f, nil
}

// Fig7 reproduces Fig. 7 (run times) and Fig. 10 (system statistics) from
// one YCSB sweep over all six variants.
func Fig7(opts Options) (*YCSBFigures, error) {
	recs, err := YCSBSweep(opts, fig7Variants, nil)
	if err != nil {
		return nil, err
	}
	return buildYCSBFigures(opts, "Fig7", recs)
}

// Fig11a: unbounded PIM module buffer. The extra "basic-naive" series is
// the bounded-buffer Naive baseline the paper includes for reference.
func Fig11a(opts Options) (*Series, error) {
	return figWithModifiedConfig(opts, "Fig11a", func(cfg *Config) { cfg.PIMBufferSize = 0 })
}

// Fig11b: zero PIM logic execution time.
func Fig11b(opts Options) (*Series, error) {
	return figWithModifiedConfig(opts, "Fig11b", func(cfg *Config) { cfg.PIMZeroLatency = true })
}

func figWithModifiedConfig(opts Options, name string, modify func(*Config)) (*Series, error) {
	recs, err := YCSBSweepNamed(opts, strings.ToLower(name), fig7Variants, modify)
	if err != nil {
		return nil, err
	}
	baseNaive, err := YCSBSweep(opts, []Model{Naive}, nil)
	if err != nil {
		return nil, err
	}
	names := append(variantNames(fig7Variants), "basic-naive")
	s := report.NewSeries(name, "scopes", "run time / naive", names)
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		vals := norm[records]
		var naiveCycles float64
		for _, r := range recs {
			if r.Records == records && r.Model == Naive {
				naiveCycles = float64(r.Result.Cycles)
			}
		}
		for _, r := range baseNaive {
			if r.Records == records {
				vals["basic-naive"] = float64(r.Result.Cycles) / naiveCycles
			}
		}
		s.AddPoint(float64(scopesOf(recs, records)), vals)
	}
	return s, nil
}

// Fig12 reproduces the 8MB-LLC experiment: run time plus the scan-latency
// and SBV statistics (Fig. 12a-c).
func Fig12(opts Options) (*YCSBFigures, error) {
	recs, err := YCSBSweepNamed(opts, "fig12", fig7Variants, func(cfg *Config) {
		cfg.LLCSets = 8192 // 8MB, 16-way, 64B lines
	})
	if err != nil {
		return nil, err
	}
	return buildYCSBFigures(opts, "Fig12", recs)
}

// Fig13 reproduces the 8-thread / 16-core experiment.
func Fig13(opts Options) (*Series, error) {
	recs, err := ycsbSweep(opts, "fig13", fig7Variants,
		func(p *ycsb.Params) { p.Threads = 8 },
		func(cfg *Config) { cfg.Cores = 16 })
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Fig13", "scopes", "run time / naive", variantNames(fig7Variants))
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		s.AddPoint(float64(scopesOf(recs, records)), norm[records])
	}
	return s, nil
}

// TPCHRun is one query under one model.
type TPCHRun struct {
	Query  string
	Model  Model
	Result Result
}

// TPCHSweep runs every Table IV query under the given models, one job
// per (query, model) point. Each query's workload is prepared once and
// shared read-only across its model variants.
func TPCHSweep(opts Options, models []Model) ([]TPCHRun, error) {
	type point struct {
		w     *tpch.Workload
		query string
		model Model
	}
	var points []point
	var specs []runner.SimJob
	for _, q := range tpch.Queries() {
		w := tpch.NewWorkload(q, 4, opts.tpchScale(), false)
		extra := tpchIdentity(q, 4, opts.tpchScale(), false)
		for _, m := range models {
			pt := point{w: w, query: q.Name, model: m}
			points = append(points, pt)
			specs = append(specs, runner.SimJob{
				Key:     fmt.Sprintf("tpch/%s/model=%s", q.Name, m),
				Base:    DefaultConfig(),
				Mutate:  func(cfg *Config) { cfg.Model = pt.model },
				Execute: func(cfg Config) (Result, error) { return tpch.Run(pt.w, cfg) },
				Extra:   extra,
			})
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	opts.log("tpch sweep: %s", runner.Summarize(results))
	var out []TPCHRun
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		out = append(out, TPCHRun{Query: points[i].query, Model: points[i].model, Result: r.Value})
	}
	return out, collectErrs(results)
}

// Fig8 reproduces Fig. 8: per-query run time normalized to Naive, with the
// geometric mean, and Fig. 9's scope buffer hit rates from the same runs.
func Fig8Fig9(opts Options) (fig8, fig9 *Table, err error) {
	models := fig7Variants
	runs, err := TPCHSweep(opts, models)
	if err != nil {
		return nil, nil, err
	}
	byQuery := map[string]map[string]float64{}
	hit := map[string]map[string]float64{}
	for _, r := range runs {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[string]float64{}
			hit[r.Query] = map[string]float64{}
		}
		byQuery[r.Query][r.Model.String()] = float64(r.Result.Cycles)
		hit[r.Query][r.Model.String()] = r.Result.Stats["llc.sb_hit_rate"]
	}

	fig8 = &Table{Title: "Fig8 — TPC-H run time normalized to Naive"}
	fig8.Header = append([]string{"query"}, variantNames(models[1:])...)
	geo := map[string][]float64{}
	for _, q := range tpch.Queries() {
		row := []string{q.Name}
		naive := byQuery[q.Name][Naive.String()]
		if naive == 0 {
			return nil, nil, fmt.Errorf("fig8: no Naive baseline for %s", q.Name)
		}
		for _, m := range models[1:] {
			v := byQuery[q.Name][m.String()] / naive
			geo[m.String()] = append(geo[m.String()], v)
			row = append(row, report.F(v))
		}
		fig8.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, m := range models[1:] {
		row = append(row, report.F(report.GeoMean(geo[m.String()])))
	}
	fig8.AddRow(row...)

	fig9 = &Table{Title: "Fig9 — scope buffer hit rate"}
	proposed := []Model{Atomic, Store, Scope, ScopeRelaxed}
	fig9.Header = append([]string{"query"}, variantNames(proposed)...)
	for _, q := range tpch.Queries() {
		row := []string{q.Name}
		for _, m := range proposed {
			row = append(row, report.F(hit[q.Name][m.String()]))
		}
		fig9.AddRow(row...)
	}
	return fig8, fig9, nil
}

// Fig9YCSB adds the YCSB column of Fig. 9 (scope buffer hit rate).
func Fig9YCSB(opts Options) (*Table, error) {
	p := ycsb.DefaultParams(opts.ycsbRecordCounts()[len(opts.ycsbRecordCounts())-1])
	p.Operations = opts.ycsbOps()
	p.Seed = opts.seed()
	w := ycsb.New(p)
	w.Precompute()
	models := ProposedModels()
	specs := make([]runner.SimJob, len(models))
	for i, m := range models {
		m := m
		specs[i] = runner.SimJob{
			Key:     fmt.Sprintf("fig9-ycsb/model=%s", m),
			Base:    DefaultConfig(),
			Mutate:  func(cfg *Config) { cfg.Model = m },
			Execute: func(cfg Config) (Result, error) { return ycsb.Run(w, cfg) },
			Extra:   ycsbIdentity(p),
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	if err := collectErrs(results); err != nil {
		return nil, err
	}
	t := &Table{Title: "Fig9 (YCSB) — scope buffer hit rate", Header: []string{"model", "hit rate"}}
	for i, r := range results {
		t.AddRow(models[i].String(), report.F(r.Value.Stats["llc.sb_hit_rate"]))
	}
	return t, nil
}

// Fig1Table runs the litmus sweep for every variant and tabulates the
// verdicts (§I / Fig. 1).
func Fig1Table(opts Options) (*Table, error) {
	t := &Table{Title: "Fig1 — litmus: stale read / happens-before cycle under adversarial prefetch",
		Header: []string{"model", "stale read", "hb cycle", "guaranteed correct"}}
	models := []Model{Naive, SWFlush, Atomic, Store, Scope, ScopeRelaxed}
	jobs := make([]runner.Job[[]LitmusOutcome], len(models))
	for i, m := range models {
		m := m
		jobs[i] = runner.Job[[]LitmusOutcome]{
			Key: fmt.Sprintf("fig1/model=%s", m),
			Run: func() ([]LitmusOutcome, error) { return SweepFig1(m, LitmusDefaultSweep()) },
		}
	}
	results := runner.RunJobs(jobs, runner.Options[[]LitmusOutcome]{
		Parallelism: opts.Parallelism,
		Pool:        opts.pool,
		OnResult: func(done, total int, r runner.JobResult[[]LitmusOutcome]) {
			opts.log("[%d/%d] %s wall=%s", done, total, r.Key, r.Wall.Round(time.Millisecond))
		},
	})
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Key, r.Err)
		}
		outs := r.Value
		stale, cycle := LitmusVulnerable(outs)
		incomplete := false
		for _, o := range outs {
			if !o.Completed {
				incomplete = true
			}
		}
		verdict := "yes"
		if stale || cycle || incomplete {
			verdict = "NO"
		}
		staleS := fmt.Sprintf("%v", stale)
		if incomplete {
			staleS += " (stuck reads)"
		}
		t.AddRow(models[i].String(), staleS, fmt.Sprintf("%v", cycle), verdict)
		opts.log("fig1 %s stale=%v cycle=%v", models[i], stale, cycle)
	}
	return t, nil
}

// TableITable renders the paper's Table I.
func TableITable() *Table {
	t := &Table{Title: "Table I — consistency model definitions and implementations",
		Header: []string{"model", "PIM op allowed reordering", "additional fence", "scope buffer & SBV"}}
	for _, d := range core.TableI() {
		t.AddRow(d.Model.String(), d.AllowedReorder, d.AdditionalFences, d.Structures)
	}
	return t
}

// TableIITable renders the evaluation system configuration.
func TableIITable() *Table {
	cfg := DefaultConfig()
	t := &Table{Title: "Table II — architecture and system configuration",
		Header: []string{"component", "value"}}
	t.AddRow("cores", fmt.Sprintf("%d, x86-TSO commit-order, %.1fGHz", cfg.Cores, cfg.ClockGHz))
	t.AddRow("L1", fmt.Sprintf("private, %dKB, 64B lines, %d-way, %d-cycle hit",
		cfg.L1Sets*cfg.L1Ways*64/1024, cfg.L1Ways, cfg.L1HitLatency))
	t.AddRow("LLC", fmt.Sprintf("shared, %dMB, 64B lines, %d-way, %d-cycle hit, inclusive MESI",
		cfg.LLCSets*cfg.LLCWays*64/(1<<20), cfg.LLCWays, cfg.LLCHitLatency))
	t.AddRow("L1 scope buffer", fmt.Sprintf("%d sets, %d-way (scope-relaxed only)", cfg.L1ScopeBufSets, cfg.L1ScopeBufWays))
	t.AddRow("L2 scope buffer", fmt.Sprintf("%d sets, %d-way", cfg.LLCScopeBufSets, cfg.LLCScopeBufWays))
	t.AddRow("main memory", fmt.Sprintf("%d-cycle DRAM, %d banks", cfg.DRAMLatency, cfg.Banks))
	t.AddRow("PIM module", fmt.Sprintf("1 (spec as in [25]), buffer %d ops, %d cycles/micro-op",
		cfg.PIMBufferSize, cfg.PIMCyclesPerMicroOp))
	t.AddRow("scope", "2MB huge page")
	t.AddRow("max records/scope", fmt.Sprintf("%d", DefaultLayout().RecordsPerScope()))
	return t
}

// TableIIITable renders the YCSB workload summary.
func TableIIITable() *Table {
	p := ycsb.DefaultParams(1_000_000)
	t := &Table{Title: "Table III — YCSB workload summary", Header: []string{"parameter", "value"}}
	t.AddRow("operations", fmt.Sprintf("%d", p.Operations))
	t.AddRow("scan fraction", fmt.Sprintf("%.0f%%", p.ScanFraction*100))
	t.AddRow("insert fraction", fmt.Sprintf("%.0f%%", (1-p.ScanFraction)*100))
	t.AddRow("fields per record", fmt.Sprintf("%d", p.Fields))
	t.AddRow("field length", fmt.Sprintf("%dB", p.FieldBytes))
	t.AddRow("records in scan results", fmt.Sprintf("uniform [1,%d]", p.MaxScanRecords))
	t.AddRow("scan base record", fmt.Sprintf("zipfian (theta=%.2f)", p.ZipfTheta))
	return t
}

// TableIVTable renders the TPC-H query summary.
func TableIVTable() *Table {
	t := &Table{Title: "Table IV — TPC-H query summary",
		Header: []string{"query", "scopes", "PIM section", "terms", "ops/scope"}}
	for _, q := range tpch.Queries() {
		section := "Filter only"
		if q.Full {
			section = "Full-query"
		}
		t.AddRow(q.Name, fmt.Sprintf("%d", q.Scopes), section,
			fmt.Sprintf("%d", len(q.Terms)), fmt.Sprintf("%d", q.OpsPerScope()))
	}
	return t
}

// AreaTable renders the §VI-A hardware-overhead estimate.
func AreaTable() *Table {
	rep := EstimateArea()
	t := &Table{Title: "Hardware overhead — scope buffer + SBV (paper: 0.092% / 0.22%)",
		Header: []string{"configuration", "raw bit ratio", "calibrated area"}}
	t.AddRow("LLC only (atomic/store/scope)",
		fmt.Sprintf("%.4f%%", rep.LLCOnlyRawPct), fmt.Sprintf("%.3f%%", rep.LLCOnlyCalibratedPct))
	t.AddRow("all caches (scope-relaxed)",
		fmt.Sprintf("%.4f%%", rep.AllCachesRawPct), fmt.Sprintf("%.3f%%", rep.AllCachesCalibratedPct))
	return t
}

// lastRecordsWorkload generates the sweep's largest YCSB workload,
// frozen for read-only sharing across a job batch, plus its cache
// identity string.
func lastRecordsWorkload(opts Options) (*ycsb.Workload, string) {
	records := opts.ycsbRecordCounts()[len(opts.ycsbRecordCounts())-1]
	p := ycsb.DefaultParams(records)
	p.Operations = opts.ycsbOps()
	p.Seed = opts.seed()
	w := ycsb.New(p)
	w.Precompute()
	return w, ycsbIdentity(p)
}

// AblationTable quantifies the coherence hardware of §IV: the scope buffer
// (avoids repeat scans) and the SBV (skips untouched sets). Without the
// SBV a scan pays one cycle per LLC set; without the scope buffer every
// PIM op scans.
func AblationTable(opts Options) (*Table, error) {
	w, extra := lastRecordsWorkload(opts)

	type variant struct {
		name        string
		noSB, noSBV bool
	}
	variants := []variant{
		{"scope buffer + SBV (paper)", false, false},
		{"no scope buffer", true, false},
		{"no SBV", false, true},
		{"neither", true, true},
	}
	specs := make([]runner.SimJob, len(variants))
	for i, v := range variants {
		v := v
		specs[i] = runner.SimJob{
			Key:  "ablation/" + v.name,
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.NoScopeBuffer = v.noSB
				cfg.NoSBV = v.noSBV
			},
			Execute: func(cfg Config) (Result, error) { return ycsb.Run(w, cfg) },
			Extra:   extra,
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	if err := collectErrs(results); err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Ablation — §IV coherence hardware (YCSB, %d scopes, scope model)", w.Scopes),
		Header: []string{"configuration", "run time norm", "mean scan latency", "scans", "sb hit rate"}}
	base := float64(results[0].Value.Cycles)
	for i, r := range results {
		t.AddRow(variants[i].name,
			report.F(float64(r.Value.Cycles)/base),
			report.F(r.Value.Stats["llc.scan_latency_mean"]),
			report.F(r.Value.Stats["llc.scan_count"]),
			report.F(r.Value.Stats["llc.sb_hit_rate"]))
	}
	return t, nil
}

// ScopeBufferSizingTable reproduces the §IV-A sizing claim: "even a
// small-sized scope buffer is sufficient to achieve close to the maximum
// possible hit rate".
func ScopeBufferSizingTable(opts Options) (*Table, error) {
	w, extra := lastRecordsWorkload(opts)

	geoms := []struct{ sets, ways int }{{1, 1}, {4, 1}, {16, 1}, {64, 1}, {64, 4}}
	specs := make([]runner.SimJob, len(geoms))
	for i, g := range geoms {
		g := g
		specs[i] = runner.SimJob{
			Key:  fmt.Sprintf("sbsize/%dx%d", g.sets, g.ways),
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.LLCScopeBufSets, cfg.LLCScopeBufWays = g.sets, g.ways
			},
			Execute: func(cfg Config) (Result, error) { return ycsb.Run(w, cfg) },
			Extra:   extra,
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	if err := collectErrs(results); err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Scope buffer sizing (YCSB, %d scopes, scope model)", w.Scopes),
		Header: []string{"geometry", "entries", "hit rate", "run time norm"}}
	// Normalize against the largest geometry (the last point).
	base := float64(results[len(results)-1].Value.Cycles)
	for i, r := range results {
		g := geoms[i]
		t.AddRow(fmt.Sprintf("%d sets x %d ways", g.sets, g.ways),
			fmt.Sprintf("%d", g.sets*g.ways),
			report.F(r.Value.Stats["llc.sb_hit_rate"]),
			report.F(float64(r.Value.Cycles)/base))
	}
	return t, nil
}

// MultiModuleTable is an extension experiment: scopes distributed over N
// PIM modules ("different PIM modules ... connect to the same host",
// §II-A). More modules add module-level buffering and arrival bandwidth.
func MultiModuleTable(opts Options) (*Table, error) {
	w, extra := lastRecordsWorkload(opts)
	counts := []int{1, 2, 4}
	specs := make([]runner.SimJob, len(counts))
	for i, n := range counts {
		n := n
		specs[i] = runner.SimJob{
			Key:  fmt.Sprintf("multimod/n=%d", n),
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.PIMModules = n
			},
			Execute: func(cfg Config) (Result, error) { return ycsb.Run(w, cfg) },
			Extra:   extra,
		}
	}
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	if err := collectErrs(results); err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Extension — multiple PIM modules (YCSB, %d scopes, scope model)", w.Scopes),
		Header: []string{"modules", "run time norm", "mean buffer len", "peak buffer"}}
	base := float64(results[0].Value.Cycles)
	for i, r := range results {
		t.AddRow(fmt.Sprintf("%d", counts[i]),
			report.F(float64(r.Value.Cycles)/base),
			report.F(r.Value.Stats["pim.buffer_len_mean"]),
			report.F(r.Value.Stats["pim.peak_buffer"]))
	}
	return t, nil
}

// Experiments lists the regenerable artifacts.
func Experiments() []string {
	return []string{"fig1", "fig3", "fig7", "fig8", "fig9", "fig10", "fig11a",
		"fig11b", "fig12", "fig13", "table1", "table2", "table3", "table4",
		"area", "ablation", "sbsize", "multimod", "all"}
}

// StandaloneExperiments returns Experiments() minus "all" and the
// entries bundled with another experiment's sweep (fig10 with fig7,
// fig9 with fig8): the canonical iteration list for an "all" run.
func StandaloneExperiments() []string {
	var out []string
	for _, e := range Experiments() {
		if e == "all" || e == "fig10" || e == "fig9" {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ExperimentTiming is one experiment's wall-clock accounting inside a
// RunAll suite: start-of-experiment to last-report, measured while the
// experiment shares the suite pool with its siblings. Concurrent
// experiments overlap, so Wall includes time queued behind other
// experiments' jobs and the suite's walls sum to more than its elapsed
// time — read them as completion latency, not exclusive compute (the
// per-sweep runner.Summary in the -v log reports compute). Timing is
// always collected — regardless of any timed callback — and returned
// so callers can render a report footer.
type ExperimentTiming struct {
	Name string
	Wall time.Duration
}

// TimingFooter renders a suite's timing accounting as one line,
// suitable for a report footer. Wall times vary run to run, so the
// footer belongs next to the other accounting (stderr in pimbench),
// not inside the byte-stable experiment reports. total sums the
// overlapping per-experiment walls; it exceeds the suite's elapsed
// time whenever experiments ran concurrently.
func TimingFooter(timings []ExperimentTiming) string {
	var b strings.Builder
	b.WriteString("timing (overlapping):")
	var total time.Duration
	for _, t := range timings {
		total += t.Wall
		fmt.Fprintf(&b, " %s=%s", t.Name, t.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, " total=%s", total.Round(time.Millisecond))
	return b.String()
}

// RunAll executes every standalone experiment, handing each name and
// printable report to emit in the canonical StandaloneExperiments
// order. Experiments run concurrently — at most opts.Parallelism (or
// GOMAXPROCS) at a time, so workload generation cannot oversubscribe
// the machine the same cap the pool enforces for simulation — and
// enqueue their simulation jobs onto one shared worker pool, so the
// whole suite is bounded by its slowest single point rather than the
// sum of per-experiment tails. Per-experiment result demultiplexing
// keeps every report byte-identical to a serial run, and a shared
// in-flight dedup computes grid points that several experiments
// overlap on (the Naive baselines) only once. Per-experiment timing is
// collected unconditionally and returned; timed, when non-nil,
// additionally observes each experiment as it finishes (in emission
// order). A failed experiment is reported against its name without
// aborting the others. RunAll is the single "all" orchestration shared
// by RunExperiment("all") and cmd/pimbench.
func RunAll(opts Options, emit func(name, report string), timed func(name string, d time.Duration)) ([]ExperimentTiming, error) {
	names := StandaloneExperiments()
	pool := runner.NewPool(opts.Parallelism)
	defer pool.Close()
	opts.pool = pool
	opts.flight = runner.NewFlight[Result]()
	if inner := opts.Log; inner != nil {
		// Experiments log concurrently; serialize so callers' Log (and
		// pimbench's -v writer) need not be goroutine-safe.
		var logMu sync.Mutex
		opts.Log = func(format string, args ...interface{}) {
			logMu.Lock()
			defer logMu.Unlock()
			inner(format, args...)
		}
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)

	type outcome struct {
		report string
		err    error
		wall   time.Duration
	}
	outs := make([]outcome, len(names))
	ready := make([]chan struct{}, len(names))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for i, name := range names {
		go func(i int, name string) {
			defer close(ready[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			rep, err := RunExperiment(name, opts)
			outs[i] = outcome{report: rep, err: err, wall: time.Since(start)}
		}(i, name)
	}

	timings := make([]ExperimentTiming, 0, len(names))
	var errs []error
	for i, name := range names {
		<-ready[i]
		timings = append(timings, ExperimentTiming{Name: name, Wall: outs[i].wall})
		if timed != nil {
			timed(name, outs[i].wall)
		} else {
			opts.log("%s finished in %s", name, outs[i].wall.Round(time.Millisecond))
		}
		if outs[i].err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, outs[i].err))
			continue
		}
		emit(name, outs[i].report)
	}
	return timings, errors.Join(errs...)
}

// RunExperiment dispatches by name and returns the printable report.
func RunExperiment(name string, opts Options) (string, error) {
	var b strings.Builder
	emit := func(items ...fmt.Stringer) {
		for _, it := range items {
			b.WriteString(it.String())
			b.WriteByte('\n')
		}
	}
	switch strings.ToLower(name) {
	case "fig1":
		t, err := Fig1Table(opts)
		if err != nil {
			return "", err
		}
		emit(t)
	case "fig3":
		s, err := Fig3(opts)
		if err != nil {
			return "", err
		}
		emit(s)
	case "fig7", "fig10":
		f, err := Fig7(opts)
		if err != nil {
			return "", err
		}
		emit(f.Abs, f.Norm, f.BufLen, f.UniqueScopes, f.ScanLatency, f.SkipRatio)
	case "fig8", "fig9":
		f8, f9, err := Fig8Fig9(opts)
		if err != nil {
			return "", err
		}
		emit(f8, f9)
		y, err := Fig9YCSB(opts)
		if err != nil {
			return "", err
		}
		emit(y)
	case "fig11a":
		s, err := Fig11a(opts)
		if err != nil {
			return "", err
		}
		emit(s)
	case "fig11b":
		s, err := Fig11b(opts)
		if err != nil {
			return "", err
		}
		emit(s)
	case "fig12":
		f, err := Fig12(opts)
		if err != nil {
			return "", err
		}
		emit(f.Norm, f.ScanLatency, f.SkipRatio)
	case "fig13":
		s, err := Fig13(opts)
		if err != nil {
			return "", err
		}
		emit(s)
	case "table1":
		emit(TableITable())
	case "table2":
		emit(TableIITable())
	case "table3":
		emit(TableIIITable())
	case "table4":
		emit(TableIVTable())
	case "area":
		emit(AreaTable())
	case "ablation":
		t, err := AblationTable(opts)
		if err != nil {
			return "", err
		}
		emit(t)
	case "sbsize":
		t, err := ScopeBufferSizingTable(opts)
		if err != nil {
			return "", err
		}
		emit(t)
	case "multimod":
		t, err := MultiModuleTable(opts)
		if err != nil {
			return "", err
		}
		emit(t)
	case "all":
		// The timing footer is intentionally not embedded in the report:
		// wall times vary run to run, and the report must stay
		// byte-identical across cold, warm and parallel runs.
		if _, err := RunAll(opts, func(name, report string) {
			fmt.Fprintf(&b, "==== %s ====\n%s\n", name, report)
		}, nil); err != nil {
			return b.String(), err
		}
	default:
		return "", fmt.Errorf("unknown experiment %q (have %v)", name, Experiments())
	}
	return b.String(), nil
}
