package bulkpim

// Shared experiment-harness infrastructure: measurement scales, the
// Options value threaded through every phase, the runner wiring
// (parallelism, shared pool, cache and in-flight-dedup hooks), and the
// suite timing accounting. The experiments themselves are declared in
// the registry (registry.go) with one spec file per family:
// exp_ycsb.go, exp_tpch.go, exp_litmus.go, exp_tables.go. The
// distributed plan/shard/merge pipeline on top lives in plan.go.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"bulkpim/internal/runner"
	"bulkpim/internal/workload/ycsb"
)

// Scale selects how much of the paper's measurement volume the harness
// reproduces. Distributions, scope counts and model behaviour are identical
// at every scale; only operation counts and sweep densities shrink.
type Scale string

const (
	// ScaleSmoke is the smallest scale: one record count, a handful of
	// operations — a CI smoke signal that every experiment still runs
	// end to end (seconds for the whole suite).
	ScaleSmoke Scale = "smoke"
	// ScaleBench is the minimal scale used by `go test -bench` (seconds
	// per figure).
	ScaleBench Scale = "bench"
	// ScaleQuick regenerates every figure's shape in minutes.
	ScaleQuick Scale = "quick"
	// ScaleMedium densifies the sweeps (tens of minutes).
	ScaleMedium Scale = "medium"
	// ScaleFull is the paper's measurement volume (1000 YCSB ops, 10 runs
	// per TPC-H query, full sweep densities). Expect hours sequentially;
	// use Parallelism to bound it by the slowest single point, or shard
	// the planned suite across machines (see plan.go).
	ScaleFull Scale = "full"
)

// Scales lists the valid measurement scales, smallest first.
func Scales() []Scale {
	return []Scale{ScaleSmoke, ScaleBench, ScaleQuick, ScaleMedium, ScaleFull}
}

// ValidScale reports whether s names a known scale.
func ValidScale(s Scale) bool {
	for _, v := range Scales() {
		if s == v {
			return true
		}
	}
	return false
}

// Options configures the experiment harness.
type Options struct {
	Scale Scale
	// Log receives progress lines; nil discards them. RunAll serializes
	// calls across its concurrent experiments, so Log need not be
	// goroutine-safe.
	Log func(format string, args ...interface{})
	// Seed lets repeated harness runs vary; 0 uses the default.
	Seed uint64
	// Parallelism caps concurrent simulation jobs; 0 uses GOMAXPROCS, 1
	// forces sequential execution. Every sweep's grid points are
	// independent simulations, so results — figures, tables, CSVs — are
	// byte-identical at every value.
	Parallelism int
	// Cache, when non-nil, memoizes finished grid points across harness
	// invocations: every simulation job is looked up by (key, config +
	// workload fingerprint) before executing and written back after.
	// The simulations are deterministic and results round-trip exactly
	// through the store, so cached and computed runs emit byte-identical
	// reports; an interrupted run resumes by skipping finished points,
	// and a run whose cache holds every planned point executes nothing
	// (the report pass of a sharded suite).
	Cache *ResultCache
	// Snapshots, when non-nil, is the content-addressed workload
	// snapshot store: lazily generated workloads (YCSB databases, TPC-H
	// query sections) are looked up by their identity before generating
	// and published after, so repeated runs — and fleet workers sharing
	// the store's filesystem — generate each database at most once
	// suite-wide instead of once per process.
	Snapshots *SnapshotStore
	// pool and flight, when non-nil, schedule every sweep of this
	// options value on one shared worker pool and deduplicate identical
	// in-flight grid points across experiments (set by RunAll for
	// suite-wide scheduling).
	pool   *runner.Pool
	flight *runner.Flight[Result]
	// onSettle, when non-nil, observes every job settlement (key,
	// result, error) as it lands — the streaming-report hook wired by
	// StreamReport. It is invoked from runner callbacks, possibly for
	// several experiments at once, so it must be goroutine-safe.
	onSettle func(key string, r Result, jobErr error)
}

func (o Options) log(format string, args ...interface{}) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// runnerOpts forwards live per-job progress to the harness log and
// wires the result cache's lookup/write-back hooks. Under parallelism
// the completion order (and therefore the log order) varies; results
// do not.
func (o Options) runnerOpts() runner.Options[Result] {
	ro := runner.Options[Result]{
		Parallelism: o.Parallelism,
		Pool:        o.pool,
		Flight:      o.flight,
		OnResult: func(done, total int, r runner.JobResult[Result]) {
			if o.onSettle != nil {
				o.onSettle(r.Key, r.Value, r.Err)
			}
			if r.Err != nil {
				o.log("[%d/%d] %s FAILED: %v", done, total, r.Key, r.Err)
				return
			}
			cached := ""
			if r.Cached {
				cached = " (cached)"
			}
			o.log("[%d/%d] %s cycles=%d wall=%s%s", done, total, r.Key,
				r.Value.Cycles, r.Wall.Round(time.Millisecond), cached)
		},
	}
	if c := o.Cache; c != nil {
		ro.Lookup = c.Lookup
		ro.Store = func(key, fingerprint string, v Result) {
			// A failed write-back only costs a future recompute; it is
			// counted in the cache stats and logged, never fatal.
			if err := c.Store(key, fingerprint, v); err != nil {
				o.log("cache store %s: %v", key, err)
			}
		}
	}
	return ro
}

// collectErrs folds per-job failures into one error, each reported
// against its job key. A nil return means every point succeeded.
func collectErrs(rs []runner.JobResult[Result]) error {
	var errs []error
	for _, r := range rs {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Key, r.Err))
		}
	}
	return errors.Join(errs...)
}

// ycsbRecordCounts returns the record-count sweep (x axis of Figs. 3/7/10..12).
func (o Options) ycsbRecordCounts() []int {
	switch o.Scale {
	case ScaleFull:
		return []int{100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
			8_000_000, 16_000_000, 24_000_000, 32_000_000}
	case ScaleMedium:
		return []int{100_000, 500_000, 2_000_000, 8_000_000, 16_000_000, 32_000_000}
	case ScaleBench:
		return []int{100_000, 2_000_000}
	case ScaleSmoke:
		return []int{100_000}
	default:
		return []int{100_000, 500_000, 2_000_000, 8_000_000}
	}
}

func (o Options) ycsbOps() int {
	switch o.Scale {
	case ScaleFull:
		return 1000
	case ScaleMedium:
		return 60
	case ScaleBench:
		return 8
	case ScaleSmoke:
		return 4
	default:
		return 16
	}
}

func (o Options) tpchScale() float64 {
	switch o.Scale {
	case ScaleFull:
		return 1.0
	case ScaleMedium:
		return 0.1
	case ScaleBench, ScaleSmoke:
		return 0.01
	default:
		return 0.02
	}
}

// lastRecordsParams returns the parameter set of the sweep's largest
// YCSB workload — the database the ablation, sizing, multi-module and
// Fig. 9 YCSB batches all run against.
func (o Options) lastRecordsParams() ycsb.Params {
	counts := o.ycsbRecordCounts()
	return o.ycsbParams(counts[len(counts)-1], nil)
}

// ExperimentTiming is one experiment's wall-clock accounting inside a
// RunAll suite: start-of-experiment to last-report, measured while the
// experiment shares the suite pool with its siblings. Concurrent
// experiments overlap, so Wall includes time queued behind other
// experiments' jobs and the suite's walls sum to more than its elapsed
// time — read them as completion latency, not exclusive compute (the
// per-sweep runner.Summary in the -v log reports compute). Timing is
// always collected — regardless of any timed callback — and returned
// so callers can render a report footer.
type ExperimentTiming struct {
	Name string
	Wall time.Duration
}

// TimingFooter renders a suite's timing accounting as one line,
// suitable for a report footer. Wall times vary run to run, so the
// footer belongs next to the other accounting (stderr in pimbench),
// not inside the byte-stable experiment reports. total sums the
// overlapping per-experiment walls; it exceeds the suite's elapsed
// time whenever experiments ran concurrently.
func TimingFooter(timings []ExperimentTiming) string {
	var b strings.Builder
	b.WriteString("timing (overlapping):")
	var total time.Duration
	for _, t := range timings {
		total += t.Wall
		fmt.Fprintf(&b, " %s=%s", t.Name, t.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, " total=%s", total.Round(time.Millisecond))
	return b.String()
}
