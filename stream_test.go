package bulkpim

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestArtifactContract pins the per-artifact redesign of the registry:
// every spec declares its renderable artifacts — the spec's own name
// first, bundled names after, globally unique — with key sets that
// exactly cover the spec's planned jobs, and declaring them executes
// no simulation work. Names are scale-independent (only key sets vary
// with options), which is what lets catalogs and stream assemblers
// enumerate at a fixed scale.
func TestArtifactContract(t *testing.T) {
	opts := Options{Scale: ScaleSmoke}
	seen := map[string]string{}
	before := execCount.Load()
	for _, spec := range registry {
		names := spec.ArtifactNames()
		want := append([]string{spec.Name}, spec.Bundles...)
		if strings.Join(names, ",") != strings.Join(want, ",") {
			t.Errorf("%s: artifact names %v, want name+bundles %v", spec.Name, names, want)
		}
		for _, n := range names {
			if owner, dup := seen[n]; dup {
				t.Errorf("artifact %q declared by both %s and %s", n, owner, spec.Name)
			}
			seen[n] = spec.Name
		}

		planned := map[string]bool{}
		if spec.Plan != nil {
			jobs, err := spec.Plan(opts)
			if err != nil {
				t.Fatalf("%s: plan: %v", spec.Name, err)
			}
			for _, j := range jobs {
				planned[j.Key] = true
			}
		}
		union := map[string]bool{}
		for _, a := range spec.Artifacts(opts) {
			for _, k := range a.Keys {
				if !planned[k] {
					t.Errorf("%s/%s declares key %q the plan does not contain", spec.Name, a.Name, k)
				}
				union[k] = true
			}
		}
		if len(union) != len(planned) {
			t.Errorf("%s: artifact keys cover %d of %d planned keys", spec.Name, len(union), len(planned))
		}

		full := spec.Artifacts(Options{Scale: ScaleFull})
		if len(full) != len(names) {
			t.Fatalf("%s: %d artifacts at full scale, %d at smoke", spec.Name, len(full), len(names))
		}
		for i, a := range full {
			if a.Name != names[i] {
				t.Errorf("%s: artifact name varies with scale: %q vs %q", spec.Name, a.Name, names[i])
			}
		}
	}
	if len(seen) != 18 {
		t.Errorf("%d artifacts suite-wide, want 18", len(seen))
	}
	if got := execCount.Load() - before; got != 0 {
		t.Errorf("declaring artifacts executed %d simulation jobs, want 0", got)
	}
}

// TestStreamReportByteIdentical is the streaming acceptance contract:
// a streamed "all" run emits every artifact exactly once (settle-order
// seqs 0..17), and the assembled output is byte-identical to the batch
// report.
func TestStreamReportByteIdentical(t *testing.T) {
	opts := Options{Scale: ScaleSmoke}
	batch, err := RunExperiment("all", opts)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}

	var mu sync.Mutex
	var emits []StreamEmit
	var buf bytes.Buffer
	timings, err := StreamReport("all", opts, func(e StreamEmit) {
		mu.Lock()
		defer mu.Unlock()
		emits = append(emits, e)
	}, &buf)
	if err != nil {
		t.Fatalf("streamed run: %v", err)
	}
	if buf.String() != batch {
		t.Fatalf("streamed output diverges from batch report:\n--- batch ---\n%s\n--- stream ---\n%s",
			batch, buf.String())
	}
	if len(timings) != len(registry) {
		t.Fatalf("%d timings, want %d", len(timings), len(registry))
	}
	if len(emits) != 18 {
		t.Fatalf("%d emissions, want 18", len(emits))
	}
	seqs := map[int]bool{}
	for _, e := range emits {
		if e.Err != nil {
			t.Errorf("artifact %s/%s emitted an error: %v", e.Experiment, e.Artifact, e.Err)
		}
		if e.Seq < 0 || e.Seq >= len(emits) || seqs[e.Seq] {
			t.Errorf("bad or duplicate seq %d for %s/%s", e.Seq, e.Experiment, e.Artifact)
		}
		seqs[e.Seq] = true
	}
}

// TestStreamReportSingleExperiment: a single-experiment stream matches
// RunExperiment for that name — including a bundled artifact name,
// which streams its owner's full artifact list.
func TestStreamReportSingleExperiment(t *testing.T) {
	opts := Options{Scale: ScaleSmoke}
	for _, name := range []string{"fig3", "fig10"} {
		batch, err := RunExperiment(name, opts)
		if err != nil {
			t.Fatalf("%s: batch run: %v", name, err)
		}
		var buf bytes.Buffer
		if _, err := StreamReport(name, opts, nil, &buf); err != nil {
			t.Fatalf("%s: streamed run: %v", name, err)
		}
		if buf.String() != batch {
			t.Fatalf("%s: streamed output diverges from batch report", name)
		}
	}
}

// TestReportStreamStaticImmediate: zero-key artifacts (the static
// tables) emit at stream construction, before any job settles.
func TestReportStreamStaticImmediate(t *testing.T) {
	var emits []StreamEmit
	s, err := NewReportStream("table2", Options{Scale: ScaleSmoke}, func(e StreamEmit) {
		emits = append(emits, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emits) != 1 || emits[0].Artifact != "table2" || emits[0].Err != nil {
		t.Fatalf("static table did not emit at construction: %+v", emits)
	}
	if emits[0].Output == "" {
		t.Fatal("static table emitted empty output")
	}
	if s.Pending() != 0 {
		t.Fatalf("%d artifacts pending after construction, want 0", s.Pending())
	}
}

// TestReportStreamFailedJob: a failed job still counts its artifacts
// down — the artifact emits (with a render error when the missing
// result matters) instead of stalling the stream, and the assembler
// skips it like the batch path skips failed experiments.
func TestReportStreamFailedJob(t *testing.T) {
	opts := Options{Scale: ScaleSmoke}
	var emits []StreamEmit
	s, err := NewReportStream("fig1", opts, func(e StreamEmit) {
		emits = append(emits, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := LookupExperiment("fig1")
	arts := spec.Artifacts(opts)
	if len(arts) != 1 || len(arts[0].Keys) == 0 {
		t.Fatalf("fig1 artifact shape changed: %+v", arts)
	}
	for i, k := range arts[0].Keys {
		if i == 0 {
			s.Settle(k, Result{}, errors.New("injected job failure"))
			continue
		}
		s.Settle(k, Result{}, nil)
	}
	if s.Pending() != 0 {
		t.Fatalf("stream stalled: %d pending after every key settled", s.Pending())
	}
	if len(emits) != 1 || emits[0].Err == nil {
		t.Fatalf("artifact with a failed key must emit a render error, got %+v", emits)
	}
	// Repeat settlements of an already-settled key are ignored.
	s.Settle(arts[0].Keys[0], Result{}, nil)
	if len(emits) != 1 {
		t.Fatalf("repeat settlement re-emitted: %d emissions", len(emits))
	}
}
