package bulkpim

// Distributed pipeline, built on the registry's plan/report split:
//
//	coordinator:  pimbench plan -exp all -scale full        (manifest)
//	shard i:      pimbench run -exp all -scale full -shard i/n -cache-dir d_i
//	coordinator:  pimbench merge -o merged d_0 ... d_{n-1}
//	coordinator:  pimbench -exp all -scale full -cache-dir merged
//
// Planning is deterministic, so every machine derives the same job
// manifest from the same options; the -shard filter is a stable hash
// of the job key, so the shards partition the suite exactly; merging
// is validated concatenation of the shards' result caches; and the
// final report pass runs entirely from cache hits, byte-identical to
// a single-process run.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bulkpim/internal/resultcache"
	"bulkpim/internal/runner"
)

// PlannedJob is one manifest entry of a plan pass: the identity an
// external scheduler needs to route the job (shard assignment hashes
// Key) and the result cache needs to recognize its outcome
// (Key + Fingerprint).
type PlannedJob struct {
	Experiment  string `json:"experiment"`
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
}

// plannedExperiment pairs an experiment with its planned jobs.
type plannedExperiment struct {
	name string
	jobs []SimJob
}

// planFor plans the named experiment — or, for "all", every standalone
// experiment in canonical order. Table-only experiments plan zero
// jobs. No simulation work is executed.
func planFor(name string, opts Options) ([]plannedExperiment, error) {
	name = strings.ToLower(name)
	var specs []ExperimentSpec
	if name == "all" {
		specs = registry
	} else {
		spec, ok := LookupExperiment(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (have %v)", name, Experiments())
		}
		specs = []ExperimentSpec{spec}
	}
	var out []plannedExperiment
	for _, spec := range specs {
		p := plannedExperiment{name: spec.Name}
		if spec.Plan != nil {
			jobs, err := spec.Plan(opts)
			if err != nil {
				return nil, fmt.Errorf("%s: plan: %w", spec.Name, err)
			}
			p.jobs = jobs
		}
		out = append(out, p)
	}
	return out, nil
}

// Manifest plans the named experiment ("all" for the whole suite) and
// returns one entry per job, in deterministic order: experiments in
// canonical suite order, jobs in plan order. Grid points that several
// experiments share (the Naive baselines) appear once per experiment —
// they carry identical keys and fingerprints, so schedulers and shards
// recognize them as one unit of work. No simulation work is executed.
func Manifest(name string, opts Options) ([]PlannedJob, error) {
	planned, err := planFor(name, opts)
	if err != nil {
		return nil, err
	}
	// Non-nil even for job-less experiments: the -json form must be an
	// empty array, not null.
	out := []PlannedJob{}
	for _, p := range planned {
		for _, j := range p.jobs {
			out = append(out, PlannedJob{
				Experiment:  p.name,
				Key:         j.Key,
				Fingerprint: j.FingerprintID(),
			})
		}
	}
	return out, nil
}

// ManifestVersion identifies the `plan -json` envelope format. Bump it
// whenever the envelope shape changes: ParseManifest rejects foreign
// versions loudly, so a manifest saved by an incompatible build can
// never feed a diff that silently reports nothing to do.
const ManifestVersion = "bulkpim-manifest-v1"

// ManifestEnvelope is the stable schema-versioned wrapper `plan -json`
// emits: the manifest itself plus everything a later diff needs to
// judge compatibility — the envelope version, the result-cache schema
// version the fingerprints were computed under, the tool build stamp,
// and the plan's identity (experiment, scale, seed).
type ManifestEnvelope struct {
	Version    string       `json:"manifest_version"`
	Schema     string       `json:"schema_version"`
	Build      string       `json:"build,omitempty"`
	Experiment string       `json:"experiment"`
	Scale      string       `json:"scale"`
	Seed       uint64       `json:"seed"`
	Jobs       []PlannedJob `json:"jobs"`
}

// NewManifestEnvelope wraps planned jobs in the current envelope.
// build is the emitting tool's build stamp (may be empty).
func NewManifestEnvelope(name string, opts Options, build string, jobs []PlannedJob) ManifestEnvelope {
	if jobs == nil {
		jobs = []PlannedJob{}
	}
	return ManifestEnvelope{
		Version:    ManifestVersion,
		Schema:     resultcache.SchemaVersion,
		Build:      build,
		Experiment: strings.ToLower(name),
		Scale:      string(opts.Scale),
		Seed:       opts.Seed,
		Jobs:       jobs,
	}
}

// ParseManifest decodes a saved `plan -json` envelope. Legacy bare
// JSON arrays (pre-envelope builds) and foreign envelope versions are
// rejected loudly — an incompatible saved manifest must fail the diff,
// never shrink it to an empty one.
func ParseManifest(data []byte) (ManifestEnvelope, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return ManifestEnvelope{}, errors.New("manifest: empty file")
	}
	if trimmed[0] == '[' {
		return ManifestEnvelope{}, errors.New(
			"manifest: bare JSON array without an envelope — saved by an older pimbench build; re-plan with this build before diffing")
	}
	var env ManifestEnvelope
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return ManifestEnvelope{}, fmt.Errorf("manifest: %w", err)
	}
	if env.Version == "" {
		return ManifestEnvelope{}, errors.New(
			"manifest: missing manifest_version — saved by an older pimbench build; re-plan with this build before diffing")
	}
	if env.Version != ManifestVersion {
		return ManifestEnvelope{}, fmt.Errorf(
			"manifest: version %q, this build reads %q — re-plan with this build before diffing",
			env.Version, ManifestVersion)
	}
	return env, nil
}

// ManifestDiff is a prior manifest diffed against the current plan, at
// fingerprint granularity: the fingerprint content-addresses the
// simulation, so a config or code edit invalidates exactly the
// fingerprints it shifts. The alias keys of one fingerprint group
// travel together — an invalidated group re-plans all of its manifest
// entries, an unchanged group none — mirroring how the executors
// dedup work by fingerprint.
type ManifestDiff struct {
	// Invalidated lists the current manifest entries whose fingerprint
	// the prior manifest does not contain — exactly the subset a re-run
	// has to execute (everything else is a warm cache hit).
	Invalidated []PlannedJob
	// Removed lists the prior entries whose fingerprint the current
	// plan no longer produces (grid points dropped by the edit); they
	// are reported, never silently discarded.
	Removed []PlannedJob
	// Unchanged counts current entries whose fingerprint carries over;
	// InvalidatedGroups/UnchangedGroups count distinct fingerprints.
	Unchanged         int
	InvalidatedGroups int
	UnchangedGroups   int
	// SchemaChanged reports a result-cache schema-version mismatch
	// between the manifests: every cached result is unreadable by this
	// build, so every current fingerprint is invalidated regardless of
	// overlap.
	SchemaChanged bool
}

// DiffManifests diffs a prior envelope against the current one. Both
// sides must already have passed ParseManifest's version gate.
func DiffManifests(old, cur ManifestEnvelope) ManifestDiff {
	d := ManifestDiff{SchemaChanged: old.Schema != cur.Schema}
	oldFPs := map[string]bool{}
	for _, j := range old.Jobs {
		oldFPs[j.Fingerprint] = true
	}
	curFPs := map[string]bool{}
	invalidFPs := map[string]bool{}
	keptFPs := map[string]bool{}
	for _, j := range cur.Jobs {
		curFPs[j.Fingerprint] = true
		if d.SchemaChanged || !oldFPs[j.Fingerprint] {
			d.Invalidated = append(d.Invalidated, j)
			if !invalidFPs[j.Fingerprint] {
				invalidFPs[j.Fingerprint] = true
				d.InvalidatedGroups++
			}
			continue
		}
		d.Unchanged++
		if !keptFPs[j.Fingerprint] {
			keptFPs[j.Fingerprint] = true
			d.UnchangedGroups++
		}
	}
	for _, j := range old.Jobs {
		if !curFPs[j.Fingerprint] {
			d.Removed = append(d.Removed, j)
		}
	}
	return d
}

// Summary renders the one-line accounting `plan -diff` prints.
func (d ManifestDiff) Summary() string {
	s := fmt.Sprintf("%d invalidated (%d fingerprints), %d unchanged (%d fingerprints), %d removed",
		len(d.Invalidated), d.InvalidatedGroups, d.Unchanged, d.UnchangedGroups, len(d.Removed))
	if d.SchemaChanged {
		s += " [schema version changed: every fingerprint invalidated]"
	}
	return s
}

// fpGroup is one distinct simulation of a planned suite: the job to
// execute (the canonical, first-in-plan-order instance), its
// fingerprint, and every distinct key the suite plans it under
// (canonical first — the rest are aliases whose cache entries are
// written from the one result).
type fpGroup struct {
	job  SimJob
	fp   string
	keys []string
}

// dedupPlan groups a planned suite by fingerprint — the content
// address, so equal fingerprints under different keys describe the
// same simulation — and returns the groups in plan order alongside the
// flat manifest. This is the dedup every executor shares: ExecuteShard
// and the coordinator both run one simulation per group and fan its
// result out to the group's keys.
func dedupPlan(planned []plannedExperiment) (groups []*fpGroup, manifest []PlannedJob) {
	byFP := map[string]*fpGroup{}
	seen := map[string]bool{}
	for _, p := range planned {
		for _, j := range p.jobs {
			fp := j.FingerprintID()
			manifest = append(manifest, PlannedJob{Experiment: p.name, Key: j.Key, Fingerprint: fp})
			id := j.Key + "\x00" + fp
			if seen[id] {
				continue
			}
			seen[id] = true
			g, ok := byFP[fp]
			if !ok {
				g = &fpGroup{job: j, fp: fp}
				byFP[fp] = g
				groups = append(groups, g)
			}
			g.keys = append(g.keys, j.Key)
		}
	}
	return groups, manifest
}

// ownedFingerprints is the one dedup-then-assign ownership rule of the
// distributed pipeline, shared by FilterManifest and ExecuteShard so
// `plan -shard` can never disagree with what `run -shard` executes:
// manifest entries are grouped by fingerprint (one group = one
// distinct simulation) and the group's first key in plan order — the
// canonical owner, deterministic on every machine — picks the shard.
// The returned map holds every fingerprint, true iff this shard owns
// its group.
func (s Shard) ownedFingerprints(manifest []PlannedJob) map[string]bool {
	owned := map[string]bool{}
	for _, j := range manifest {
		if _, ok := owned[j.Fingerprint]; !ok {
			owned[j.Fingerprint] = s.Owns(j.Key)
		}
	}
	return owned
}

// FilterManifest returns the manifest entries a shard is responsible
// for: every entry of an owned fingerprint group, canonical and
// aliases alike, since the owning shard executes the simulation and
// writes all of the group's cache entries. The filtered manifests of
// all n shards therefore partition the full manifest and agree exactly
// with what `run -shard i/n` executes and produces.
func FilterManifest(manifest []PlannedJob, shard Shard) []PlannedJob {
	if shard.Count <= 1 {
		return manifest
	}
	owned := shard.ownedFingerprints(manifest)
	var out []PlannedJob
	for _, j := range manifest {
		if owned[j.Fingerprint] {
			out = append(out, j)
		}
	}
	return out
}

// Shard selects a 1/n slice of a planned suite by stable hash of the
// job key (runner.ShardOf): at a given Count, every key belongs to
// exactly one Index, independent of plan order, experiment mix, or the
// machine doing the planning — so independently planned shards
// partition the suite exactly. Count <= 1 owns every key.
type Shard struct {
	Index, Count int
}

// ParseShard parses "i/n" (0 <= i < n). Trailing junk is rejected —
// a mistyped spec must fail loudly, not silently run a wrong
// partition.
func ParseShard(s string) (Shard, error) {
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("shard %q: want i/n (e.g. 0/4)", s)
	}
	var sh Shard
	var err1, err2 error
	sh.Index, err1 = strconv.Atoi(idx)
	sh.Count, err2 = strconv.Atoi(count)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("shard %q: want i/n (e.g. 0/4)", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("shard %q: want 0 <= i < n", s)
	}
	return sh, nil
}

func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Owns reports whether key belongs to this shard.
func (s Shard) Owns(key string) bool {
	return s.Count <= 1 || runner.ShardOf(key, s.Count) == s.Index
}

// ShardSummary accounts one execute-only shard run.
type ShardSummary struct {
	// Planned counts the suite's manifest entries; Distinct the unique
	// simulations (one per fingerprint) after dedup; Owned the distinct
	// simulations this shard executed; Aliased the additional cache
	// entries written for keys whose fingerprint twin was executed
	// here.
	Planned, Distinct, Owned, Aliased int
	// Jobs is the executed batch's runner accounting.
	Jobs JobSummary
}

func (s ShardSummary) String() string {
	return fmt.Sprintf("%d owned of %d distinct jobs (%d planned, %d aliases): %s",
		s.Owned, s.Distinct, s.Planned, s.Aliased, s.Jobs)
}

// ExecuteShard is the worker half of a distributed run: it plans the
// named experiment ("all" for the suite), deduplicates the planned
// jobs down to distinct simulations, filters to the shard's slice, and
// executes exactly those — building no reports. Results land in
// opts.Cache (set one: an execute-only run without a cache computes
// results and drops them), whose file the coordinator later merges and
// reports from. With Shard{0, 1} it executes the whole suite — a cache
// pre-warmer. With opts.Snapshots set, the shard's workloads are
// loaded from (and published to) the content-addressed snapshot store,
// so shards sharing a filesystem generate each database at most once
// between them instead of once per shard process.
//
// Dedup is by fingerprint, not key: the fingerprint content-addresses
// the simulation (final config + workload identity), so equal
// fingerprints under different keys — fig9-ycsb, the ablation
// baseline, the sbsize/multimod default geometries and the largest
// grid point all describe the same run of the suite's most expensive
// simulation — execute once. Ownership follows ownedFingerprints (the
// rule FilterManifest shares); the group's non-canonical keys become
// aliases whose cache entries are written from the one result, so the
// coordinator's report pass still hits on every planned key.
func ExecuteShard(name string, opts Options, shard Shard) (ShardSummary, error) {
	planned, err := planFor(name, opts)
	if err != nil {
		return ShardSummary{}, err
	}
	groups, manifest := dedupPlan(planned)
	var sum ShardSummary
	sum.Planned = len(manifest)
	sum.Distinct = len(groups)

	ownedFP := shard.ownedFingerprints(manifest)
	var owned []*fpGroup
	var jobs []SimJob
	for _, g := range groups {
		if !ownedFP[g.fp] {
			continue
		}
		sum.Owned++
		owned = append(owned, g)
		jobs = append(jobs, g.job)
	}
	results := runner.RunJobs(runner.SimJobs(jobs), opts.runnerOpts())
	sum.Jobs = runner.Summarize(results)
	if opts.Cache != nil {
		for i, r := range results {
			if r.Err != nil {
				continue
			}
			for _, key := range owned[i].keys[1:] {
				sum.Aliased++
				if err := opts.Cache.Store(key, owned[i].fp, r.Value); err != nil {
					opts.log("cache store %s: %v", key, err)
				}
			}
		}
	}
	return sum, collectErrs(results)
}
