package bulkpim

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its experiment at bench scale (the same code paths as
// cmd/pimbench at quick/medium/full scale), plus micro-benchmarks of the
// core structures. Key figure values are attached as custom metrics.

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// Parallelism is pinned to 1 so benchmark numbers stay comparable
// across machines and with pre-runner history.
var benchOpts = Options{Scale: ScaleBench, Parallelism: 1}

// reportLast attaches the final sweep point of each variant as metrics.
func reportLast(b *testing.B, s *Series, unit string) {
	b.Helper()
	if len(s.X) == 0 {
		return
	}
	last := len(s.X) - 1
	for _, v := range s.Variants {
		b.ReportMetric(s.Y[v][last], v+"_"+unit)
	}
}

// BenchmarkFig1Litmus regenerates the §I / Fig. 1 litmus verdicts.
func BenchmarkFig1Litmus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := SweepFig1(SWFlush, []Tick{0, 400, 800, 1200, 1600})
		if err != nil {
			b.Fatal(err)
		}
		stale, cycle := LitmusVulnerable(outs)
		if !stale || !cycle {
			b.Fatal("Fig. 1 not reproduced under swflush")
		}
		for _, m := range ProposedModels() {
			outs, err := SweepFig1(m, []Tick{0, 800, 1600})
			if err != nil {
				b.Fatal(err)
			}
			if s, c := LitmusVulnerable(outs); s || c {
				b.Fatalf("%v vulnerable", m)
			}
		}
	}
}

// BenchmarkFig3Coherence regenerates Fig. 3 (naive / uncacheable / swflush).
func BenchmarkFig3Coherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Fig3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, s, "norm")
	}
}

// BenchmarkFig7YCSB regenerates Fig. 7 (run time, absolute + normalized).
func BenchmarkFig7YCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, f.Norm, "norm")
	}
}

// BenchmarkFig8TPCH regenerates Fig. 8 (per-query normalized run time) and
// Fig. 9's TPC-H hit rates.
func BenchmarkFig8TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig8Fig9(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ScopeBuffer regenerates the YCSB scope-buffer hit rates.
func BenchmarkFig9ScopeBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig9YCSB(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10PIMStats regenerates Fig. 10's system statistics (shared
// sweep with Fig. 7).
func BenchmarkFig10PIMStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, f.BufLen, "buflen")
		reportLast(b, f.ScanLatency, "scancyc")
	}
}

// BenchmarkFig11Ablations regenerates Fig. 11a (unbounded PIM buffer) and
// Fig. 11b (zero PIM latency).
func BenchmarkFig11Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig11a(benchOpts); err != nil {
			b.Fatal(err)
		}
		if _, err := Fig11b(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12LLC8MB regenerates the 8MB-LLC experiment.
func BenchmarkFig12LLC8MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, f.ScanLatency, "scancyc")
	}
}

// BenchmarkFig13Threads8 regenerates the 8-thread / 16-core experiment.
func BenchmarkFig13Threads8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, s, "norm")
	}
}

// BenchmarkTableI..IV and the area model regenerate the paper's tables.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TableITable().String() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TableIITable().String() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TableIIITable().String() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TableIVTable().String() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAreaModel regenerates the §VI-A hardware-overhead estimate.
func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := EstimateArea()
		b.ReportMetric(rep.LLCOnlyCalibratedPct, "llc_pct")
		b.ReportMetric(rep.AllCachesCalibratedPct, "all_pct")
	}
}

// ---- micro-benchmarks of the core structures ----

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(1, tick)
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScopeBufferLookup(b *testing.B) {
	sb := core.NewScopeBuffer(64, 4)
	for s := 0; s < 256; s++ {
		sb.Insert(mem.ScopeID(s))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Lookup(mem.ScopeID(i & 1023))
	}
}

func BenchmarkSBVScanFilter(b *testing.B) {
	v := core.NewSBV(2048)
	for s := 0; s < 2048; s += 32 {
		v.OnInsert(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for s := 0; s < 2048; s++ {
			if v.Test(s) {
				n++
			}
		}
		if n == 0 {
			b.Fatal("no sets")
		}
	}
}

func BenchmarkEngineCmpConst(b *testing.B) {
	g := pim.DefaultGeometry()
	bk := mem.NewBacking()
	img := pim.LoadArray(bk, 0, g, 0)
	for r := 0; r < g.Rows; r++ {
		img.SetFieldBE(r, 0, 64, uint64(r)*0x9E3779B97F4A7C15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.CmpConst(pim.PredGE, 0, 64, uint64(i), 500, 501, 502)
	}
}

func BenchmarkMayReorder(b *testing.B) {
	a := core.OpRef{Class: core.OpPIM, Scope: 3}
	c := core.OpRef{Class: core.OpLoad, Scope: 7, Line: 0x1000}
	for i := 0; i < b.N; i++ {
		core.MayReorder(core.Scope, a, c)
	}
}
