package bulkpim

// The always-on serving daemon behind `pimbench serve`: internal/serve
// supplies the HTTP/JSON API, internal/coord the persistent elastic
// worker pool, and this file the bulkpim-specific glue — resolving a
// request (experiment × scale × seed × config overrides) to its
// deduplicated plan, strict config-override validation, the shared
// result cache, and the two execution backends (in-process local
// workers, or a fleet of `pimbench work -dynamic` subprocesses that
// plan per job spec instead of per startup flags).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/serve"
)

// ParseConfigOverride validates a client's raw config-override JSON —
// an object of Config field overrides such as {"Cores":2,"MCQueue":16}
// — and returns a pure mutator applying it, or nil for an empty/null
// override. Decoding is strict (unknown fields, type mismatches and
// trailing data are errors) and validated once against the default
// Config, so a bad override is rejected at request time, never inside
// a worker.
func ParseConfigOverride(raw []byte) (func(*Config), error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 || bytes.Equal(trimmed, []byte("null")) {
		return nil, nil
	}
	apply := func(cfg *Config) error {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(cfg); err != nil {
			return err
		}
		if dec.More() {
			return errors.New("trailing data after override object")
		}
		return nil
	}
	probe := DefaultConfig()
	if err := apply(&probe); err != nil {
		return nil, fmt.Errorf("config override: %w", err)
	}
	// The mutator re-applies the already-validated document; decoding
	// cannot fail differently on another Config value of the same type.
	return func(cfg *Config) { _ = apply(cfg) }, nil
}

// resolvedPlan is one request shape's deduplicated plan: the API's
// point list, the fingerprint-to-job index executors run from, and the
// key-to-fingerprint index the artifact-status path consults the cache
// with (every planned key, canonical and alias alike).
type resolvedPlan struct {
	points  []serve.Point
	byFP    map[string]SimJob
	fpByKey map[string]string
}

// planCache memoizes resolved plans by full spec identity
// (experiment × scale × seed × overrides). Planning is deterministic,
// so the daemon and every dynamic worker derive identical fingerprints
// from the same spec — the serve-fleet analogue of the coordinator's
// hello-skew guarantee.
type planCache struct {
	opts  Options
	mu    sync.Mutex
	plans map[string]*resolvedPlan
}

func newPlanCache(opts Options) *planCache {
	return &planCache{opts: opts, plans: map[string]*resolvedPlan{}}
}

func specKey(spec coord.JobSpec) string {
	return spec.Exp + "\x00" + spec.Scale + "\x00" + strconv.FormatUint(spec.Seed, 10) + "\x00" + spec.Overrides
}

func (pc *planCache) resolve(spec coord.JobSpec) (*resolvedPlan, error) {
	key := specKey(spec)
	pc.mu.Lock()
	if rp, ok := pc.plans[key]; ok {
		pc.mu.Unlock()
		return rp, nil
	}
	pc.mu.Unlock()

	// Plan outside the lock (workload identity derivation is cheap but
	// not free); concurrent duplicate resolves converge on one entry.
	if !ValidScale(Scale(spec.Scale)) {
		return nil, fmt.Errorf("unknown scale %q (valid: %v)", spec.Scale, Scales())
	}
	if spec.Exp != "all" {
		if _, ok := LookupExperiment(spec.Exp); !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: all, %s)",
				spec.Exp, strings.Join(Experiments(), ", "))
		}
	}
	mut, err := ParseConfigOverride([]byte(spec.Overrides))
	if err != nil {
		return nil, err
	}
	opts := pc.opts
	opts.Scale = Scale(spec.Scale)
	opts.Seed = spec.Seed
	planned, err := planFor(spec.Exp, opts)
	if err != nil {
		return nil, err
	}
	if mut != nil {
		// Overrides win: applied after each job's own Mutate, so the
		// fingerprints (digests of the final Config) shift with the
		// override and never collide with the base grid's.
		for pi := range planned {
			for ji := range planned[pi].jobs {
				inner := planned[pi].jobs[ji].Mutate
				planned[pi].jobs[ji].Mutate = func(c *Config) {
					if inner != nil {
						inner(c)
					}
					mut(c)
				}
			}
		}
	}
	groups, _ := dedupPlan(planned)
	rp := &resolvedPlan{byFP: make(map[string]SimJob, len(groups)),
		fpByKey: map[string]string{}}
	for _, g := range groups {
		rp.points = append(rp.points, serve.Point{
			Key: g.keys[0], Fingerprint: g.fp, Aliases: g.keys[1:]})
		rp.byFP[g.fp] = g.job
		for _, k := range g.keys {
			rp.fpByKey[k] = g.fp
		}
	}

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if prior, ok := pc.plans[key]; ok {
		return prior, nil
	}
	pc.plans[key] = rp
	return rp, nil
}

// execute resolves a dynamic job's spec and runs the fingerprint's
// simulation, with the worker protocol's panic capture.
func (pc *planCache) execute(spec coord.JobSpec, key, fingerprint string) (r Result, err error) {
	rp, err := pc.resolve(spec)
	if err != nil {
		return r, err
	}
	j, ok := rp.byFP[fingerprint]
	if !ok {
		return r, fmt.Errorf("unknown fingerprint %s for %s (plan skew between daemon and worker?)",
			fingerprint, key)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return j.Job().Run()
}

// ServeDynamicWork is the worker half of a serve fleet — `pimbench
// work -dynamic`: it plans nothing at startup (hello announces
// DynamicDistinct), derives each job's plan from the spec riding in
// its frame, and memoizes resolved plans across jobs. failAfter > 0 is
// the same crash-injection hook the static worker has.
func ServeDynamicWork(opts Options, in io.Reader, out io.Writer, failAfter int) error {
	pc := newPlanCache(opts)
	return coord.Serve(in, out, coord.ServeOptions{
		Distinct: coord.DynamicDistinct,
		Execute: func(key, fingerprint string) (Result, error) {
			return Result{}, errors.New("dynamic worker requires a job spec")
		},
		ExecuteSpec: pc.execute,
		FailAfter:   failAfter,
		Log:         opts.Log,
	})
}

// serveWorkArgs builds the dynamic work-subcommand argv a serve daemon
// hands its fleet. Unlike coordWorkArgs there is no experiment, scale
// or seed — those travel per job in the spec — only the shared
// resources workers attach to. TestServeWorkArgsRoundTrip asserts the
// round-trip through the work flag set.
func serveWorkArgs(opts Options) []string {
	args := []string{"work", "-dynamic"}
	if opts.Snapshots != nil {
		args = append(args, "-snapshot-dir", opts.Snapshots.Dir())
	}
	return args
}

// ServerOptions configures the daemon around Options (which carries
// the cache, snapshots, log and scale-independent knobs).
type ServerOptions struct {
	// Addr is the listen address; empty means 127.0.0.1:0 (ephemeral).
	Addr string
	// Workers is the initial fleet size (<= 0 means 2) and the
	// auto-replace target: a worker lost mid-run is replaced as long as
	// the live fleet is below it. Workers added over HTTP can exceed it.
	Workers int
	// WorkerCmd is the worker launch template (see CoordOptions).
	WorkerCmd string
	// Local runs executions on in-process workers instead of
	// subprocesses — no re-exec requirement, used by tests and
	// single-machine serving. Crash injection is subprocess-only.
	Local bool
	// WorkerStderr receives the workers' stderr; nil discards it.
	WorkerStderr io.Writer
	// FailWorker/FailAfter crash-inject the initial worker with id
	// FailWorker after FailAfter jobs (FailAfter > 0 enables it).
	// Replacement workers get fresh ids and are never injected.
	FailWorker int
	FailAfter  int
	// MaxAttempts, BaseBackoff and MaxBackoff tune the pool's retry
	// budget and per-worker backoff; zero values use the pool defaults.
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Server is a running pimbench serve daemon: an HTTP listener in front
// of the result cache and an elastic worker pool.
type Server struct {
	opts    Options
	sopts   ServerOptions
	pc      *planCache
	pool    *coord.Pool
	hs      *http.Server
	ln      net.Listener
	target  int
	closing atomic.Bool
	logf    func(format string, args ...any)
}

// NewServer wires the daemon and starts its initial worker fleet, but
// does not serve yet — call Serve (blocking) after reading Addr.
func NewServer(opts Options, sopts ServerOptions) (*Server, error) {
	if opts.Cache == nil {
		return nil, errors.New("pimbench serve needs Options.Cache: the daemon is a results CDN over the shared result cache")
	}
	s := &Server{opts: opts, sopts: sopts, pc: newPlanCache(opts)}

	// The pool (and the HTTP handlers) log from many goroutines, but
	// Options.Log's contract does not require goroutine-safety.
	s.logf = func(string, ...any) {}
	if opts.Log != nil {
		var logMu sync.Mutex
		base := opts.Log
		s.logf = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			base(format, args...)
		}
	}

	s.target = sopts.Workers
	if s.target <= 0 {
		s.target = 2
	}
	s.pool = coord.NewPool(coord.PoolOptions{
		Launch:       s.launchWorker,
		MaxAttempts:  sopts.MaxAttempts,
		BaseBackoff:  sopts.BaseBackoff,
		MaxBackoff:   sopts.MaxBackoff,
		Log:          s.logf,
		OnWorkerLost: s.onWorkerLost,
	})
	var launchErrs []error
	for i := 0; i < s.target; i++ {
		if _, err := s.pool.AddWorker(); err != nil {
			launchErrs = append(launchErrs, err)
		}
	}
	if len(s.pool.Stats().Workers) == 0 {
		s.pool.Close()
		return nil, fmt.Errorf("no worker launched: %w", errors.Join(launchErrs...))
	}
	for _, err := range launchErrs {
		s.logf("serve: %v (continuing on the rest of the fleet)", err)
	}

	api := serve.NewServer(serve.Backend{
		Resolve:  s.resolveRequest,
		Lookup:   opts.Cache.Lookup,
		LookupFP: opts.Cache.LookupFingerprint,
		Store: func(key, fingerprint string, r Result) {
			if err := opts.Cache.Store(key, fingerprint, r); err != nil {
				s.logf("cache store %s: %v", key, err)
			}
		},
		Exec:           s.exec,
		Experiments:    experimentCatalog,
		Artifacts:      s.resolveArtifacts,
		ArtifactStatus: s.artifactStatus,
		Fleet:          s.pool.Stats,
		AddWorker: func() (int, error) {
			return s.pool.AddWorker()
		},
		RemoveWorker: s.pool.RemoveWorker,
		Shutdown: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				s.logf("serve: shutdown: %v", err)
			}
		},
	})

	addr := sopts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.pool.Close()
		return nil, fmt.Errorf("pimbench serve: %w", err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: api}
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving the API until Shutdown; a graceful shutdown
// returns nil.
func (s *Server) Serve() error {
	err := s.hs.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the listener and dismisses the fleet.
// Queued tasks settle as failed; in-flight ones finish first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	err := s.hs.Shutdown(ctx)
	s.pool.Close()
	return err
}

// resolveRequest is the API's planning hook.
func (s *Server) resolveRequest(req serve.JobRequest) ([]serve.Point, error) {
	rp, err := s.pc.resolve(specOf(req))
	if err != nil {
		return nil, err
	}
	return rp.points, nil
}

// experimentCatalog renders the registry for GET /v1/experiments:
// every spec with its bundled aliases and artifact list, in canonical
// suite order.
func experimentCatalog() []serve.ExperimentInfo {
	var out []serve.ExperimentInfo
	for _, name := range StandaloneExperiments() {
		spec, _ := LookupExperiment(name)
		out = append(out, serve.ExperimentInfo{
			Name: spec.Name, Bundles: spec.Bundles, Artifacts: spec.ArtifactNames()})
	}
	return out
}

// resolveArtifacts is the API's per-request artifact hook: the
// renderable artifacts of the request's experiment ("all" for the full
// suite) with their exact key sets at the request's scale and seed.
func (s *Server) resolveArtifacts(req serve.JobRequest) ([]serve.ArtifactSpec, error) {
	specs, err := streamSpecs(strings.ToLower(req.Experiment))
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.Scale = Scale(req.Scale)
	opts.Seed = req.Seed
	var out []serve.ArtifactSpec
	for _, spec := range specs {
		for _, a := range spec.Artifacts(opts) {
			out = append(out, serve.ArtifactSpec{
				Experiment: spec.Name, Name: a.Name, Keys: a.Keys})
		}
	}
	return out, nil
}

// artifactStatus answers GET /v1/artifacts/{name}: the artifact's
// key-set readiness against the result cache, with its rendered output
// — produced by the owning spec's Render, from cached results alone —
// once every key has settled.
func (s *Server) artifactStatus(name string, req serve.JobRequest) (serve.ArtifactStatus, error) {
	n := strings.ToLower(name)
	spec, ok := LookupArtifact(n)
	if !ok {
		return serve.ArtifactStatus{}, fmt.Errorf("%w %q", serve.ErrUnknownArtifact, name)
	}
	jreq := req
	jreq.Experiment = spec.Name
	rp, err := s.pc.resolve(specOf(jreq))
	if err != nil {
		return serve.ArtifactStatus{}, err
	}
	opts := s.opts
	opts.Scale = Scale(req.Scale)
	opts.Seed = req.Seed
	var art *Artifact
	for _, a := range spec.Artifacts(opts) {
		if a.Name == n {
			a := a
			art = &a
			break
		}
	}
	if art == nil {
		return serve.ArtifactStatus{}, fmt.Errorf("%w %q", serve.ErrUnknownArtifact, name)
	}

	st := serve.ArtifactStatus{Artifact: n, Experiment: spec.Name,
		Scale: req.Scale, Seed: req.Seed, Keys: len(art.Keys)}
	rs := &ResultSet{byKey: map[string]Result{}}
	const missingCap = 8
	for _, k := range art.Keys {
		if v, ok := s.opts.Cache.Lookup(k, rp.fpByKey[k]); ok {
			st.Settled++
			rs.byKey[k] = v
			continue
		}
		if len(st.Missing) < missingCap {
			st.Missing = append(st.Missing, k)
		}
	}
	st.Ready = st.Settled == st.Keys
	if st.Ready {
		out, err := spec.Render(opts, n, rs)
		if err != nil {
			return serve.ArtifactStatus{}, fmt.Errorf("render %s: %w", n, err)
		}
		st.Output = out
	}
	return st, nil
}

func specOf(req serve.JobRequest) coord.JobSpec {
	return coord.JobSpec{Exp: strings.ToLower(req.Experiment), Scale: req.Scale,
		Seed: req.Seed, Overrides: string(req.Overrides)}
}

// exec dispatches one missing point onto the pool.
func (s *Server) exec(req serve.JobRequest, p serve.Point, done func(Result, error)) {
	spec := specOf(req)
	task := coord.Task{Key: p.Key, Fingerprint: p.Fingerprint, Spec: &spec}
	if err := s.pool.Submit(task, func(o coord.Outcome) { done(o.Value, o.Err) }); err != nil {
		done(Result{}, err)
	}
}

// launchWorker starts one fleet member: an in-process worker (Local)
// or a `pimbench work -dynamic` subprocess.
func (s *Server) launchWorker(id int) (coord.Worker, error) {
	if s.sopts.Local {
		return &localServeWorker{pc: s.pc}, nil
	}
	args := serveWorkArgs(s.opts)
	if s.sopts.FailAfter > 0 && id == s.sopts.FailWorker {
		args = append(append([]string(nil), args...),
			"-fail-after", strconv.Itoa(s.sopts.FailAfter))
	}
	argv, err := workerArgv(s.sopts.WorkerCmd, args)
	if err != nil {
		return nil, err
	}
	w, hello, err := coord.StartProc(id, argv, s.sopts.WorkerStderr)
	if err != nil {
		return nil, err
	}
	if hello.Distinct != coord.DynamicDistinct {
		w.Close()
		return nil, fmt.Errorf("worker announced a static plan (distinct %d); a serve fleet needs `work -dynamic` workers",
			hello.Distinct)
	}
	return w, nil
}

// onWorkerLost keeps the fleet at the auto-replace target while the
// daemon is live.
func (s *Server) onWorkerLost(id int, err error) {
	if s.closing.Load() {
		return
	}
	if len(s.pool.Stats().Workers) >= s.target {
		return
	}
	if _, aerr := s.pool.AddWorker(); aerr != nil {
		s.logf("serve: replacing lost worker %d: %v", id, aerr)
		return
	}
	s.logf("serve: worker %d lost (%v), replacement joined", id, err)
}

// localServeWorker executes dynamic tasks in-process. Execution errors
// are job-level (*coord.JobError): an in-process worker does not die
// with its job.
type localServeWorker struct{ pc *planCache }

func (w *localServeWorker) Run(t coord.Task) (Result, error) {
	if t.Spec == nil {
		return Result{}, &coord.JobError{Msg: "dynamic task without a spec"}
	}
	v, err := w.pc.execute(*t.Spec, t.Key, t.Fingerprint)
	if err != nil {
		return Result{}, &coord.JobError{Msg: err.Error()}
	}
	return v, nil
}

func (w *localServeWorker) Close() error { return nil }
