package bulkpim

// Static tables (Table I-IV, the §VI-A area estimate) and the
// extension experiments that tabulate one small job batch each: the
// §IV coherence-hardware ablation, the §IV-A scope buffer sizing
// claim, and the multi-module extension. The static tables plan zero
// jobs; the extension specs plan their batches on the sweep's largest
// YCSB workload.

import (
	"fmt"

	"bulkpim/internal/core"
	"bulkpim/internal/report"
	"bulkpim/internal/workload/tpch"
	"bulkpim/internal/workload/ycsb"
)

// tableSpec wraps a job-less, options-independent table artifact. Its
// key set is empty, so a streaming run emits it immediately.
func tableSpec(name string, build func() *Table) ExperimentSpec {
	s := ExperimentSpec{Name: name}
	s.Artifacts, s.Render = singleArtifact(name, nil,
		func(Options, *ResultSet) (string, error) {
			return render(build()), nil
		})
	return s
}

// TableITable renders the paper's Table I.
func TableITable() *Table {
	t := &Table{Title: "Table I — consistency model definitions and implementations",
		Header: []string{"model", "PIM op allowed reordering", "additional fence", "scope buffer & SBV"}}
	for _, d := range core.TableI() {
		t.AddRow(d.Model.String(), d.AllowedReorder, d.AdditionalFences, d.Structures)
	}
	return t
}

// TableIITable renders the evaluation system configuration.
func TableIITable() *Table {
	cfg := DefaultConfig()
	t := &Table{Title: "Table II — architecture and system configuration",
		Header: []string{"component", "value"}}
	t.AddRow("cores", fmt.Sprintf("%d, x86-TSO commit-order, %.1fGHz", cfg.Cores, cfg.ClockGHz))
	t.AddRow("L1", fmt.Sprintf("private, %dKB, 64B lines, %d-way, %d-cycle hit",
		cfg.L1Sets*cfg.L1Ways*64/1024, cfg.L1Ways, cfg.L1HitLatency))
	t.AddRow("LLC", fmt.Sprintf("shared, %dMB, 64B lines, %d-way, %d-cycle hit, inclusive MESI",
		cfg.LLCSets*cfg.LLCWays*64/(1<<20), cfg.LLCWays, cfg.LLCHitLatency))
	t.AddRow("L1 scope buffer", fmt.Sprintf("%d sets, %d-way (scope-relaxed only)", cfg.L1ScopeBufSets, cfg.L1ScopeBufWays))
	t.AddRow("L2 scope buffer", fmt.Sprintf("%d sets, %d-way", cfg.LLCScopeBufSets, cfg.LLCScopeBufWays))
	t.AddRow("main memory", fmt.Sprintf("%d-cycle DRAM, %d banks", cfg.DRAMLatency, cfg.Banks))
	t.AddRow("PIM module", fmt.Sprintf("1 (spec as in [25]), buffer %d ops, %d cycles/micro-op",
		cfg.PIMBufferSize, cfg.PIMCyclesPerMicroOp))
	t.AddRow("scope", "2MB huge page")
	t.AddRow("max records/scope", fmt.Sprintf("%d", DefaultLayout().RecordsPerScope()))
	return t
}

// TableIIITable renders the YCSB workload summary.
func TableIIITable() *Table {
	p := ycsb.DefaultParams(1_000_000)
	t := &Table{Title: "Table III — YCSB workload summary", Header: []string{"parameter", "value"}}
	t.AddRow("operations", fmt.Sprintf("%d", p.Operations))
	t.AddRow("scan fraction", fmt.Sprintf("%.0f%%", p.ScanFraction*100))
	t.AddRow("insert fraction", fmt.Sprintf("%.0f%%", (1-p.ScanFraction)*100))
	t.AddRow("fields per record", fmt.Sprintf("%d", p.Fields))
	t.AddRow("field length", fmt.Sprintf("%dB", p.FieldBytes))
	t.AddRow("records in scan results", fmt.Sprintf("uniform [1,%d]", p.MaxScanRecords))
	t.AddRow("scan base record", fmt.Sprintf("zipfian (theta=%.2f)", p.ZipfTheta))
	return t
}

// TableIVTable renders the TPC-H query summary.
func TableIVTable() *Table {
	t := &Table{Title: "Table IV — TPC-H query summary",
		Header: []string{"query", "scopes", "PIM section", "terms", "ops/scope"}}
	for _, q := range tpch.Queries() {
		section := "Filter only"
		if q.Full {
			section = "Full-query"
		}
		t.AddRow(q.Name, fmt.Sprintf("%d", q.Scopes), section,
			fmt.Sprintf("%d", len(q.Terms)), fmt.Sprintf("%d", q.OpsPerScope()))
	}
	return t
}

// AreaTable renders the §VI-A hardware-overhead estimate.
func AreaTable() *Table {
	rep := EstimateArea()
	t := &Table{Title: "Hardware overhead — scope buffer + SBV (paper: 0.092% / 0.22%)",
		Header: []string{"configuration", "raw bit ratio", "calibrated area"}}
	t.AddRow("LLC only (atomic/store/scope)",
		fmt.Sprintf("%.4f%%", rep.LLCOnlyRawPct), fmt.Sprintf("%.3f%%", rep.LLCOnlyCalibratedPct))
	t.AddRow("all caches (scope-relaxed)",
		fmt.Sprintf("%.4f%%", rep.AllCachesRawPct), fmt.Sprintf("%.3f%%", rep.AllCachesCalibratedPct))
	return t
}

// ---- Ablation (§IV coherence hardware) ----

// ablationVariant is one coherence-hardware configuration.
type ablationVariant struct {
	name        string
	noSB, noSBV bool
}

// ablationVariants quantifies the coherence hardware of §IV: the scope
// buffer (avoids repeat scans) and the SBV (skips untouched sets).
// Without the SBV a scan pays one cycle per LLC set; without the scope
// buffer every PIM op scans.
var ablationVariants = []ablationVariant{
	{"scope buffer + SBV (paper)", false, false},
	{"no scope buffer", true, false},
	{"no SBV", false, true},
	{"neither", true, true},
}

func planAblation(opts Options) []SimJob {
	lw := &lazyYCSB{p: opts.lastRecordsParams(), snap: opts.Snapshots}
	extra := ycsbIdentity(lw.p)
	specs := make([]SimJob, len(ablationVariants))
	for i, v := range ablationVariants {
		v := v
		specs[i] = SimJob{
			Key:  "ablation/" + v.name,
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.NoScopeBuffer = v.noSB
				cfg.NoSBV = v.noSBV
			},
			Execute: countExec(func(cfg Config) (Result, error) {
				return ycsb.Run(lw.workload(), cfg)
			}),
			Extra: extra,
		}
	}
	return specs
}

func ablationTableFrom(opts Options, rs *ResultSet) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Ablation — §IV coherence hardware (YCSB, %d scopes, scope model)",
		ycsb.ScopeCount(opts.lastRecordsParams())),
		Header: []string{"configuration", "run time norm", "mean scan latency", "scans", "sb hit rate"}}
	var base float64
	for i, v := range ablationVariants {
		r, ok := rs.Lookup("ablation/" + v.name)
		if !ok {
			return nil, fmt.Errorf("ablation: missing point %q", v.name)
		}
		if i == 0 {
			base = float64(r.Cycles)
		}
		t.AddRow(v.name,
			report.F(float64(r.Cycles)/base),
			report.F(r.Stats["llc.scan_latency_mean"]),
			report.F(r.Stats["llc.scan_count"]),
			report.F(r.Stats["llc.sb_hit_rate"]))
	}
	return t, nil
}

func ablationSpec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "ablation",
		Plan: func(opts Options) ([]SimJob, error) { return planAblation(opts), nil },
	}
	s.Artifacts, s.Render = singleArtifact("ablation",
		func(Options) []string {
			keys := make([]string, len(ablationVariants))
			for i, v := range ablationVariants {
				keys[i] = "ablation/" + v.name
			}
			return keys
		},
		func(opts Options, rs *ResultSet) (string, error) {
			t, err := ablationTableFrom(opts, rs)
			if err != nil {
				return "", err
			}
			return render(t), nil
		})
	return s
}

// AblationTable quantifies the coherence hardware of §IV (see
// ablationVariants).
func AblationTable(opts Options) (*Table, error) {
	rs, err := runPlan(opts, "ablation", planAblation(opts))
	if err != nil {
		return nil, err
	}
	return ablationTableFrom(opts, rs)
}

// ---- Scope buffer sizing (§IV-A) ----

// sbGeometries are the swept scope-buffer shapes, largest last (the
// normalization baseline).
var sbGeometries = []struct{ sets, ways int }{{1, 1}, {4, 1}, {16, 1}, {64, 1}, {64, 4}}

func planSBSize(opts Options) []SimJob {
	lw := &lazyYCSB{p: opts.lastRecordsParams(), snap: opts.Snapshots}
	extra := ycsbIdentity(lw.p)
	specs := make([]SimJob, len(sbGeometries))
	for i, g := range sbGeometries {
		g := g
		specs[i] = SimJob{
			Key:  fmt.Sprintf("sbsize/%dx%d", g.sets, g.ways),
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.LLCScopeBufSets, cfg.LLCScopeBufWays = g.sets, g.ways
			},
			Execute: countExec(func(cfg Config) (Result, error) {
				return ycsb.Run(lw.workload(), cfg)
			}),
			Extra: extra,
		}
	}
	return specs
}

func sbsizeTableFrom(opts Options, rs *ResultSet) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Scope buffer sizing (YCSB, %d scopes, scope model)",
		ycsb.ScopeCount(opts.lastRecordsParams())),
		Header: []string{"geometry", "entries", "hit rate", "run time norm"}}
	results := make([]Result, len(sbGeometries))
	for i, g := range sbGeometries {
		r, ok := rs.Lookup(fmt.Sprintf("sbsize/%dx%d", g.sets, g.ways))
		if !ok {
			return nil, fmt.Errorf("sbsize: missing point %dx%d", g.sets, g.ways)
		}
		results[i] = r
	}
	// Normalize against the largest geometry (the last point).
	base := float64(results[len(results)-1].Cycles)
	for i, g := range sbGeometries {
		t.AddRow(fmt.Sprintf("%d sets x %d ways", g.sets, g.ways),
			fmt.Sprintf("%d", g.sets*g.ways),
			report.F(results[i].Stats["llc.sb_hit_rate"]),
			report.F(float64(results[i].Cycles)/base))
	}
	return t, nil
}

func sbsizeSpec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "sbsize",
		Plan: func(opts Options) ([]SimJob, error) { return planSBSize(opts), nil },
	}
	s.Artifacts, s.Render = singleArtifact("sbsize",
		func(Options) []string {
			keys := make([]string, len(sbGeometries))
			for i, g := range sbGeometries {
				keys[i] = fmt.Sprintf("sbsize/%dx%d", g.sets, g.ways)
			}
			return keys
		},
		func(opts Options, rs *ResultSet) (string, error) {
			t, err := sbsizeTableFrom(opts, rs)
			if err != nil {
				return "", err
			}
			return render(t), nil
		})
	return s
}

// ScopeBufferSizingTable reproduces the §IV-A sizing claim: "even a
// small-sized scope buffer is sufficient to achieve close to the maximum
// possible hit rate".
func ScopeBufferSizingTable(opts Options) (*Table, error) {
	rs, err := runPlan(opts, "sbsize", planSBSize(opts))
	if err != nil {
		return nil, err
	}
	return sbsizeTableFrom(opts, rs)
}

// ---- Multi-module extension ----

// multimodCounts are the swept PIM module counts.
var multimodCounts = []int{1, 2, 4}

func planMultiModule(opts Options) []SimJob {
	lw := &lazyYCSB{p: opts.lastRecordsParams(), snap: opts.Snapshots}
	extra := ycsbIdentity(lw.p)
	specs := make([]SimJob, len(multimodCounts))
	for i, n := range multimodCounts {
		n := n
		specs[i] = SimJob{
			Key:  fmt.Sprintf("multimod/n=%d", n),
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = Scope
				cfg.PIMModules = n
			},
			Execute: countExec(func(cfg Config) (Result, error) {
				return ycsb.Run(lw.workload(), cfg)
			}),
			Extra: extra,
		}
	}
	return specs
}

func multimodTableFrom(opts Options, rs *ResultSet) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Extension — multiple PIM modules (YCSB, %d scopes, scope model)",
		ycsb.ScopeCount(opts.lastRecordsParams())),
		Header: []string{"modules", "run time norm", "mean buffer len", "peak buffer"}}
	var base float64
	for i, n := range multimodCounts {
		r, ok := rs.Lookup(fmt.Sprintf("multimod/n=%d", n))
		if !ok {
			return nil, fmt.Errorf("multimod: missing point n=%d", n)
		}
		if i == 0 {
			base = float64(r.Cycles)
		}
		t.AddRow(fmt.Sprintf("%d", n),
			report.F(float64(r.Cycles)/base),
			report.F(r.Stats["pim.buffer_len_mean"]),
			report.F(r.Stats["pim.peak_buffer"]))
	}
	return t, nil
}

func multimodSpec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "multimod",
		Plan: func(opts Options) ([]SimJob, error) { return planMultiModule(opts), nil },
	}
	s.Artifacts, s.Render = singleArtifact("multimod",
		func(Options) []string {
			keys := make([]string, len(multimodCounts))
			for i, n := range multimodCounts {
				keys[i] = fmt.Sprintf("multimod/n=%d", n)
			}
			return keys
		},
		func(opts Options, rs *ResultSet) (string, error) {
			t, err := multimodTableFrom(opts, rs)
			if err != nil {
				return "", err
			}
			return render(t), nil
		})
	return s
}

// MultiModuleTable is an extension experiment: scopes distributed over N
// PIM modules ("different PIM modules ... connect to the same host",
// §II-A). More modules add module-level buffering and arrival bandwidth.
func MultiModuleTable(opts Options) (*Table, error) {
	rs, err := runPlan(opts, "multimod", planMultiModule(opts))
	if err != nil {
		return nil, err
	}
	return multimodTableFrom(opts, rs)
}
