package bulkpim

// Tests for the parallel job runner's core contract: a sweep's results
// are identical at every parallelism level, and one failed grid point
// is reported against its job key without losing sibling results.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestRunnerDeterminism runs the same ScaleBench YCSB sweep sequentially
// and on 8 workers and requires identical RunRecord sequences: same
// order, same cycles, same stats.
func TestRunnerDeterminism(t *testing.T) {
	models := []Model{Naive, SWFlush, Scope}
	seq, err := YCSBSweep(Options{Scale: ScaleBench, Parallelism: 1}, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := YCSBSweep(Options{Scale: ScaleBench, Parallelism: 8}, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 || len(seq) != len(par) {
		t.Fatalf("record counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Model != p.Model || s.Records != p.Records || s.Scopes != p.Scopes {
			t.Fatalf("point %d identity differs: %+v vs %+v", i, s, p)
		}
		if s.Result.Cycles != p.Result.Cycles || s.Result.DrainCycles != p.Result.DrainCycles ||
			s.Result.Seconds != p.Result.Seconds {
			t.Fatalf("point %d (%s, records=%d): cycles %d vs %d",
				i, s.Model, s.Records, s.Result.Cycles, p.Result.Cycles)
		}
		if !reflect.DeepEqual(s.Result.Stats, p.Result.Stats) {
			t.Fatalf("point %d (%s, records=%d): stats differ\nseq: %v\npar: %v",
				i, s.Model, s.Records, s.Result.Stats, p.Result.Stats)
		}
	}
}

// TestRunnerErrorKeepsSiblings enqueues a batch where one mid-sweep job
// fails: the error must carry the failing job's key and every sibling
// must still deliver its result.
func TestRunnerErrorKeepsSiblings(t *testing.T) {
	w := NewYCSB(func() YCSBParamsT {
		p := YCSBParams(100_000)
		p.Operations = 4
		return p
	}())
	w.Precompute()
	boom := fmt.Errorf("injected failure")
	mkJob := func(key string, m Model, fail bool) Job {
		return SimJob{
			Key:  key,
			Base: DefaultConfig(),
			Mutate: func(cfg *Config) {
				cfg.Model = m
			},
			Execute: func(cfg Config) (Result, error) {
				if fail {
					return Result{}, boom
				}
				return RunYCSB(w, cfg)
			},
		}.Job()
	}
	jobs := []Job{
		mkJob("point-a", Naive, false),
		mkJob("point-b", Scope, true),
		mkJob("point-c", SWFlush, false),
	}
	rs := RunJobs(jobs, JobOptions{Parallelism: 2})
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[1].Err == nil || !strings.Contains(rs[1].Err.Error(), "injected failure") || rs[1].Key != "point-b" {
		t.Fatalf("failed job not reported against its key: %+v", rs[1])
	}
	for _, i := range []int{0, 2} {
		if rs[i].Err != nil || rs[i].Value.Cycles == 0 {
			t.Fatalf("sibling %s lost: err=%v cycles=%d", rs[i].Key, rs[i].Err, rs[i].Value.Cycles)
		}
	}
	sum := SummarizeJobs(rs)
	if sum.Jobs != 3 || sum.Failed != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestNormalizeToNaiveMissingBaseline: a sweep without a (successful)
// Naive point must fail loudly instead of emitting +Inf ratios.
func TestNormalizeToNaiveMissingBaseline(t *testing.T) {
	recs := []RunRecord{
		{Model: Scope, Records: 1000, Result: Result{Cycles: 42}},
	}
	if _, err := normalizeToNaive(recs); err == nil {
		t.Fatal("expected error for sweep without Naive baseline")
	}
	recs = append(recs, RunRecord{Model: Naive, Records: 1000, Result: Result{Cycles: 84}})
	norm, err := normalizeToNaive(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got := norm[1000][Scope.String()]; got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
}
